package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngineProcess/shards=4-8   	     123	    456.7 ns/op	      89 B/op	       1 allocs/op
BenchmarkGatewayQuery-8   	      10	  99000 ns/op	 1234567 pts/s
PASS
ok  	repro	1.2s
`
	results, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkEngineProcess/shards=4-8" || r.Iterations != 123 {
		t.Fatalf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 456.7 || r.Metrics["B/op"] != 89 || r.Metrics["allocs/op"] != 1 {
		t.Fatalf("first result metrics = %v", r.Metrics)
	}
	if results[1].Metrics["pts/s"] != 1234567 {
		t.Fatalf("custom metric lost: %v", results[1].Metrics)
	}
}

func TestParseBenchSkipsNonResultLines(t *testing.T) {
	// "Benchmark..." lines without an iteration count (like the -bench
	// name echo some go versions print) must be skipped, not fatal.
	results, err := parseBench("BenchmarkFoo\nBenchmarkBar-8 notanumber 1 ns/op\nrandom text\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from junk, want 0", len(results))
	}
}

func TestParseBenchBadMetricValue(t *testing.T) {
	_, err := parseBench("BenchmarkFoo-8 100 nonsense ns/op\n")
	if err == nil || !strings.Contains(err.Error(), "bad metric value") {
		t.Fatalf("err = %v, want bad metric value", err)
	}
}

func TestMissingRequired(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkEngineProcess/shards=4-8"},
		{Name: "BenchmarkGatewayQuery-8"},
	}
	if m := missingRequired(results, "BenchmarkEngineProcess,BenchmarkGatewayQuery"); len(m) != 0 {
		t.Fatalf("missing = %v, want none", m)
	}
	m := missingRequired(results, "BenchmarkEngineProcess, BenchmarkSketchMarshal ,BenchmarkGone")
	if len(m) != 2 || m[0] != "BenchmarkSketchMarshal" || m[1] != "BenchmarkGone" {
		t.Fatalf("missing = %v, want the two absent prefixes", m)
	}
	if m := missingRequired(nil, ""); len(m) != 0 {
		t.Fatalf("empty spec flagged %v", m)
	}
	if m := missingRequired(results, " , ,"); len(m) != 0 {
		t.Fatalf("blank prefixes flagged %v", m)
	}
}

// writeReport writes a baseline report with the given benchmarks into
// dir and returns its path.
func writeReport(t *testing.T, dir string, benchmarks []Result) string {
	t.Helper()
	path := filepath.Join(dir, "base.json")
	blob, err := json.Marshal(Report{GoVersion: "go1.24.0", Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsNsRegression(t *testing.T) {
	base := writeReport(t, t.TempDir(), []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkOnlyInBaseline", Metrics: map[string]float64{"ns/op": 1}},
	})
	fresh := []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 150}}, // +50% > 20%
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 110}}, // +10% ≤ 20%
		{Name: "BenchmarkOnlyInFresh", Metrics: map[string]float64{"ns/op": 999}},
	}
	ns, allocs, err := compareReports(base, fresh, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ns != 1 || allocs != 0 {
		t.Fatalf("regressed = (%d ns, %d allocs), want (1, 0)", ns, allocs)
	}
}

func TestCompareReportsQuantileRegression(t *testing.T) {
	// Load reports carry p50-ns/p99-ns; each quantile regresses
	// independently under the same threshold as ns/op.
	base := writeReport(t, t.TempDir(), []Result{
		{Name: "Load/query", Metrics: map[string]float64{"ns/op": 100, "p50-ns": 90, "p99-ns": 200}},
	})
	fresh := []Result{
		{Name: "Load/query", Metrics: map[string]float64{"ns/op": 105, "p50-ns": 91, "p99-ns": 500}},
	}
	ns, _, err := compareReports(base, fresh, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ns != 1 {
		t.Fatalf("regressed = %d, want 1 (p99 only)", ns)
	}
}

func TestCompareReportsAllocRegression(t *testing.T) {
	base := writeReport(t, t.TempDir(), []Result{
		{Name: "BenchmarkGrew", Metrics: map[string]float64{"allocs/op": 10}},
		{Name: "BenchmarkHeld", Metrics: map[string]float64{"allocs/op": 10}},
		{Name: "BenchmarkZeroStillZero", Metrics: map[string]float64{"allocs/op": 0}},
		{Name: "BenchmarkZeroBroken", Metrics: map[string]float64{"allocs/op": 0}},
		{Name: "BenchmarkNoAllocMetric", Metrics: map[string]float64{"ns/op": 5}},
	})
	fresh := []Result{
		{Name: "BenchmarkGrew", Metrics: map[string]float64{"allocs/op": 12}}, // +20% > 10%
		{Name: "BenchmarkHeld", Metrics: map[string]float64{"allocs/op": 11}}, // +10% ≤ 10%
		{Name: "BenchmarkZeroStillZero", Metrics: map[string]float64{"allocs/op": 0}},
		{Name: "BenchmarkZeroBroken", Metrics: map[string]float64{"allocs/op": 1}}, // 0 → any is a regression
		{Name: "BenchmarkNoAllocMetric", Metrics: map[string]float64{"ns/op": 5}},
	}
	ns, allocs, err := compareReports(base, fresh, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ns != 0 || allocs != 2 {
		t.Fatalf("regressed = (%d ns, %d allocs), want (0, 2): Grew and ZeroBroken", ns, allocs)
	}
}

func TestCompareReportsErrors(t *testing.T) {
	if _, _, err := compareReports(filepath.Join(t.TempDir(), "nope.json"), nil, 20, 10); err == nil {
		t.Fatal("missing baseline file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := compareReports(bad, nil, 20, 10); err == nil {
		t.Fatal("malformed baseline JSON accepted")
	}
}

func TestLoadReport(t *testing.T) {
	path := writeReport(t, t.TempDir(), []Result{
		{Name: "Load/ingest", Iterations: 500, Metrics: map[string]float64{"p99-ns": 7602175}},
	})
	rep, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "Load/ingest" {
		t.Fatalf("loaded %+v", rep.Benchmarks)
	}
	if _, err := loadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
