// Command sketchload is the load/chaos harness: it drives configurable
// mixed ingest/query traffic at a sketchd daemon or sketchgw gateway,
// records HDR-style latency histograms per operation class, and emits a
// benchjson-compatible JSON report (BENCH_load.json) that
// `tools/benchjson -in ... -compare` can diff run over run.
//
// Two ways to pick a target:
//
//	sketchload -target http://localhost:7071 -points 200000 -conns 8
//	sketchload -spawn 3 -points 100000 -chaos flap
//
// -target drives an already-running endpoint; -spawn N builds a
// self-contained in-process fleet — N sketchd peers on loopback ports
// behind a push-mode sketchgw gateway — so CI can exercise the full
// cluster serving path with one binary and no orchestration.
//
// -chaos inserts a chaosproxy (internal/loadgen/chaosproxy) between the
// gateway and peer 0 and runs the named failure scenario during the
// load phase:
//
//	flap     peer 0 alternates up/down (-flap-up/-flap-down), active
//	         connections reset on each down transition
//	latency  every client→peer chunk is delayed by -chaos-latency
//	stall    the first response chunk of each connection is delayed
//
// Under -chaos flap the run is also a pass/fail availability check: the
// gateway must answer 100% of queries (stale or fresh — the serve-stale
// machinery's whole point), the breaker must be observed open or a
// stale serve recorded during the flap, and after the flapping stops
// the gateway must recover to all-peers-up, non-partial answers. Any
// violated verdict exits 1. Ingest requests routed to the dead peer
// legitimately fail during the flap; they are reported but do not fail
// the scenario.
//
// See docs/load.md for the full flag reference, the report schema, and
// worked chaos scenarios.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/loadgen"
	"repro/internal/loadgen/chaosproxy"
	"repro/internal/server"
	"repro/internal/window"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main minus os.Exit so the exit paths stay testable.
func run(args []string) int {
	fs := flag.NewFlagSet("sketchload", flag.ContinueOnError)
	var (
		target  = fs.String("target", "", "base URL of a running sketchd/sketchgw to drive (mutually exclusive with -spawn)")
		spawn   = fs.Int("spawn", 0, "spin up this many in-process sketchd peers behind an in-process gateway and drive that")
		dim     = fs.Int("dim", 2, "point dimension")
		alpha   = fs.Float64("alpha", 1, "distance threshold α (spawn mode; must match the target otherwise)")
		seed    = fs.Uint64("seed", 1, "random seed for both the fleet and the traffic")
		shards  = fs.Int("shards", 2, "engine shards per spawned peer")
		conns   = fs.Int("conns", 4, "concurrent load connections")
		points  = fs.Int("points", 100000, "total points to ingest")
		batch   = fs.Int("batch", 200, "points per ingest request")
		qEvery  = fs.Int("query-every", 4, "one query per this many ingest batches (0 disables)")
		k       = fs.Int("k", 4, "samples per query")
		groups  = fs.Int("groups", 512, "distinct near-duplicate groups")
		zipfS   = fs.Float64("zipf", 1.2, "zipf exponent s>1 for group popularity")
		rate    = fs.Float64("rate", 0, "open-loop target points/s (0 = closed loop)")
		burst   = fs.Int("burst", 1, "batches per open-loop burst instant")
		windowW = fs.Int64("window", 0, "spawn time-window peers with width W and stamp ingest batches (0 = infinite window)")
		jitter  = fs.Int64("stamp-jitter", 0, "± stamp noise per windowed batch (keep below -window)")
		late    = fs.Float64("late", 0, "fraction of windowed batches stamped behind the frontier")
		chaos   = fs.String("chaos", "none", "failure scenario on peer 0 (spawn mode): none, flap, latency, stall")
		chaosD  = fs.Duration("chaos-latency", 50*time.Millisecond, "injected delay for -chaos latency/stall")
		flapUp  = fs.Duration("flap-up", 400*time.Millisecond, "up phase of -chaos flap")
		flapDn  = fs.Duration("flap-down", 400*time.Millisecond, "down phase of -chaos flap")
		stale   = fs.Duration("max-stale", 5*time.Second, "gateway -max-stale bound (spawn mode)")
		scrape  = fs.Bool("scrape", false, "snapshot the target's /metrics before and after the run and add the deltas to the report")
		out     = fs.String("out", "BENCH_load.json", "output report file")
		timeout = fs.Duration("timeout", 2*time.Minute, "overall run deadline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*target == "") == (*spawn == 0) {
		fmt.Fprintln(os.Stderr, "sketchload: exactly one of -target or -spawn is required")
		return 2
	}
	if *chaos != "none" && *spawn == 0 {
		fmt.Fprintln(os.Stderr, "sketchload: -chaos needs -spawn (the proxy sits between the spawned gateway and peer 0)")
		return 2
	}
	switch *chaos {
	case "none", "flap", "latency", "stall":
	default:
		fmt.Fprintf(os.Stderr, "sketchload: unknown -chaos %q (want none, flap, latency, or stall)\n", *chaos)
		return 2
	}

	if *windowW > 0 && *k > 1 {
		// WindowL0 answers single-sample queries only; a k>1 query is a
		// 400 on every windowed target, so clamp instead of failing the
		// whole run on the first query.
		log.Printf("sketchload: windowed sketches are single-sample, clamping -k %d → 1", *k)
		*k = 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cfg := loadgen.Config{
		Target:       *target,
		Dim:          *dim,
		Conns:        *conns,
		Points:       *points,
		BatchSize:    *batch,
		QueryEvery:   *qEvery,
		K:            *k,
		Groups:       *groups,
		ZipfS:        *zipfS,
		Rate:         *rate,
		Burst:        *burst,
		Windowed:     *windowW > 0,
		StampJitter:  *jitter,
		LateFraction: *late,
		Seed:         *seed,
	}

	var fl *fleet
	if *spawn > 0 {
		var err error
		fl, err = startFleet(fleetConfig{
			peers: *spawn, shards: *shards, dim: *dim, alpha: *alpha,
			seed: *seed, windowW: *windowW, maxStale: *stale,
			chaos: *chaos != "none",
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sketchload:", err)
			return 2
		}
		defer fl.stop()
		cfg.Target = fl.gwURL
		log.Printf("sketchload: spawned %d peers + gateway at %s", *spawn, fl.gwURL)
	}

	desc := fmt.Sprintf("sketchload conns=%d batch=%d zipf=%g groups=%d chaos=%s spawn=%d",
		*conns, *batch, *zipfS, *groups, *chaos, *spawn)

	// Warm the target before any chaos: the gateway needs at least one
	// complete fold to serve stale from, and verdicts about staleness
	// are meaningless against an empty cache.
	if fl != nil {
		if err := warmup(ctx, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "sketchload: warmup:", err)
			return 2
		}
	}

	// -scrape brackets the load phase (after warmup, before chaos) so
	// the deltas attribute server-side work to this run alone.
	var before map[string]float64
	scrapeClient := &http.Client{Timeout: 5 * time.Second}
	if *scrape {
		var err error
		if before, err = loadgen.ScrapeMetrics(scrapeClient, cfg.Target); err != nil {
			fmt.Fprintln(os.Stderr, "sketchload: -scrape:", err)
			return 2
		}
	}

	var (
		mon      *statsMonitor
		stopFlap func()
	)
	switch *chaos {
	case "flap":
		mon = monitorStats(ctx, cfg.Target)
		stopFlap = fl.proxy.Flap(*flapUp, *flapDn)
		log.Printf("sketchload: flapping peer 0 (%v up / %v down)", *flapUp, *flapDn)
	case "latency":
		fl.proxy.SetLatency(*chaosD)
	case "stall":
		fl.proxy.SetStall(*chaosD)
	}

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchload:", err)
		return 2
	}
	log.Printf("sketchload: %d points in %v (%.0f pts/s), %d queries (%.0f q/s), %d ingest errors, %d query errors",
		res.Points, res.Elapsed.Round(time.Millisecond), res.IngestRate(),
		res.Queries, res.QueryRate(), res.IngestErrors, res.QueryErrors)

	rep := loadgen.BuildReport(res, desc, fmt.Sprintf("%dpts", *points))

	if *scrape {
		after, err := loadgen.ScrapeMetrics(scrapeClient, cfg.Target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sketchload: -scrape:", err)
			return 2
		}
		stages := loadgen.StageDeltas(loadgen.MetricsDelta(before, after))
		rep.Append("Load/server", loadgen.HistSnapshot{Count: 1}, 0, 0, stages)
		log.Printf("sketchload: scraped %d server-side deltas from %s/metrics", len(stages), cfg.Target)
	}

	exit := 0
	if *chaos == "flap" {
		verdict, ok := flapVerdict(ctx, cfg, fl, mon, stopFlap, res)
		rep.Append("Load/chaos-flap", loadgen.HistSnapshot{Count: 1}, 0, 0, verdict)
		if !ok {
			exit = 1
		}
	}

	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "sketchload:", err)
		return 2
	}
	log.Printf("sketchload: report → %s", *out)
	return exit
}

// warmup pushes one small batch through the target and waits for a 200
// query so the serving cache holds a complete fold.
func warmup(ctx context.Context, cfg loadgen.Config) error {
	w := cfg
	w.Points = 4 * w.BatchSize
	w.QueryEvery = 1
	w.Conns = 1
	w.Rate = 0
	res, err := loadgen.Run(ctx, w)
	if err != nil {
		return err
	}
	if res.IngestErrors > 0 || res.QueryErrors > 0 || res.Queries == 0 {
		return fmt.Errorf("target not healthy before chaos: %d/%d ingest errors, %d/%d query errors",
			res.IngestErrors, res.Points, res.QueryErrors, res.Queries)
	}
	return nil
}

// flapVerdict evaluates the chaos scenario's three claims and returns
// them as report metrics (1 pass / 0 fail) plus the overall pass.
func flapVerdict(ctx context.Context, cfg loadgen.Config, fl *fleet, mon *statsMonitor, stopFlap func(), res *loadgen.Result) (map[string]float64, bool) {
	// Claim 1: every query during the flap was answered.
	available := res.Queries > 0 && res.QueryErrors == 0

	// Claim 2: the degradation machinery actually engaged — the breaker
	// was observed open, or a stale serve was recorded.
	mon.stop()
	degraded := mon.sawBreakerOpen.Load() || mon.sawStaleServe.Load()

	// Claim 3: with the proxy back up, the gateway re-folds to
	// all-peers-up, non-partial answers.
	stopFlap()
	recovered := waitRecovered(ctx, cfg, fl.peerCount)

	log.Printf("sketchload: chaos verdict: available=%v degraded-but-serving=%v recovered=%v (max staleness served %dms)",
		available, degraded, recovered, res.MaxStalenessMS)
	return map[string]float64{
		"available":        b2f(available),
		"degraded-serving": b2f(degraded),
		"recovered":        b2f(recovered),
		"max-staleness-ms": float64(res.MaxStalenessMS),
		"ingest-errors":    float64(res.IngestErrors),
	}, available && degraded && recovered
}

// waitRecovered polls the gateway until every peer is up and a query
// answers non-partial, or 30s pass.
func waitRecovered(ctx context.Context, cfg loadgen.Config, peers int) bool {
	deadline := time.Now().Add(30 * time.Second)
	client := &http.Client{Timeout: 5 * time.Second}
	for time.Now().Before(deadline) && ctx.Err() == nil {
		var st cluster.StatsResponse
		if getJSON(client, cfg.Target+"/stats", &st) == nil && st.PeersUp == peers {
			var q struct {
				Partial bool `json:"partial"`
			}
			if getJSON(client, fmt.Sprintf("%s/query?k=%d", cfg.Target, cfg.K), &q) == nil && !q.Partial {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

// statsMonitor samples the gateway's /stats during the chaos phase and
// latches whether the breaker was ever seen open and whether any stale
// serve was recorded.
type statsMonitor struct {
	sawBreakerOpen atomic.Bool
	sawStaleServe  atomic.Bool
	cancel         context.CancelFunc
	done           chan struct{}
}

func monitorStats(ctx context.Context, target string) *statsMonitor {
	ctx, cancel := context.WithCancel(ctx)
	m := &statsMonitor{cancel: cancel, done: make(chan struct{})}
	client := &http.Client{Timeout: 2 * time.Second}
	go func() {
		defer close(m.done)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			var st cluster.StatsResponse
			if getJSON(client, target+"/stats", &st) != nil {
				continue
			}
			if st.StaleServes > 0 {
				m.sawStaleServe.Store(true)
			}
			for _, p := range st.Peers {
				if !p.Up {
					m.sawBreakerOpen.Store(true)
				}
			}
		}
	}()
	return m
}

func (m *statsMonitor) stop() {
	m.cancel()
	<-m.done
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// fleetConfig shapes an in-process peer fleet.
type fleetConfig struct {
	peers    int
	shards   int
	dim      int
	alpha    float64
	seed     uint64
	windowW  int64
	maxStale time.Duration
	chaos    bool
}

// fleet is a self-contained serving topology on loopback ports: N
// sketchd peers, an optional chaosproxy in front of peer 0, and a
// push-mode gateway federating them.
type fleet struct {
	engines   []*engine.Engine
	servers   []*http.Server
	gw        *cluster.Gateway
	gwSrv     *http.Server
	gwURL     string
	proxy     *chaosproxy.Proxy
	peerCount int
}

func startFleet(fc fleetConfig) (*fleet, error) {
	opts := core.Options{
		Alpha:       fc.alpha,
		Dim:         fc.dim,
		StreamBound: 1 << 20,
		K:           8,
		Seed:        fc.seed,
		HighDim:     true,
	}
	fl := &fleet{peerCount: fc.peers}
	ecfg := engine.Config{Shards: fc.shards}
	windowed := fc.windowW > 0
	win := window.Window{Kind: window.Time, W: fc.windowW}
	peerURLs := make([]string, fc.peers)
	for i := 0; i < fc.peers; i++ {
		var (
			eng *engine.Engine
			err error
		)
		if windowed {
			eng, err = engine.NewWindowSamplerEngine(opts, win, ecfg)
		} else {
			eng, err = engine.NewSamplerEngine(opts, ecfg)
		}
		if err != nil {
			fl.stop()
			return nil, err
		}
		fl.engines = append(fl.engines, eng)
		srv, err := server.New(server.Config{Engine: eng, Dim: fc.dim, Windowed: windowed})
		if err != nil {
			fl.stop()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fl.stop()
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		fl.servers = append(fl.servers, hs)
		peerURLs[i] = "http://" + ln.Addr().String()
	}

	gwPeers := append([]string(nil), peerURLs...)
	if fc.chaos {
		p, err := chaosproxy.New(peerURLs[0])
		if err != nil {
			fl.stop()
			return nil, err
		}
		fl.proxy = p
		gwPeers[0] = p.URL()
	}

	router, err := engine.NewRouterFromOptions(core.Options{Alpha: fc.alpha, Dim: fc.dim, Seed: fc.seed})
	if err != nil {
		fl.stop()
		return nil, err
	}
	gw, err := cluster.New(cluster.Config{
		Peers:          gwPeers,
		Router:         router,
		Dim:            fc.dim,
		Partial:        cluster.PartialDegrade,
		RequestTimeout: 2 * time.Second,
		Retries:        cluster.NoRetries,
		RetryBackoff:   20 * time.Millisecond,
		DownAfter:      2,
		DownCooldown:   200 * time.Millisecond,
		Push:           true,
		MaxStale:       fc.maxStale,
		WatchTimeout:   5 * time.Second,
		PollInterval:   100 * time.Millisecond,
	})
	if err != nil {
		fl.stop()
		return nil, err
	}
	fl.gw = gw
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fl.stop()
		return nil, err
	}
	fl.gwSrv = &http.Server{Handler: gw}
	go fl.gwSrv.Serve(ln)
	fl.gwURL = "http://" + ln.Addr().String()
	return fl, nil
}

// stop tears the fleet down in dependency order: gateway first (its
// watchers hold peer connections), then the proxy, then the peers.
func (fl *fleet) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if fl.gwSrv != nil {
		fl.gwSrv.Shutdown(ctx)
	}
	if fl.gw != nil {
		fl.gw.Close()
	}
	if fl.proxy != nil {
		fl.proxy.Close()
	}
	for _, hs := range fl.servers {
		hs.Shutdown(ctx)
	}
	for _, eng := range fl.engines {
		eng.Close()
	}
}
