// Command sketchload is the load/chaos harness: it drives configurable
// mixed ingest/query traffic at a sketchd daemon or sketchgw gateway,
// records HDR-style latency histograms per operation class, and emits a
// benchjson-compatible JSON report (BENCH_load.json) that
// `tools/benchjson -in ... -compare` can diff run over run.
//
// Two ways to pick a target:
//
//	sketchload -target http://localhost:7071 -points 200000 -conns 8
//	sketchload -spawn 3 -points 100000 -chaos flap
//
// -target drives an already-running endpoint; -spawn N builds a
// self-contained in-process fleet — N sketchd peers on loopback ports
// behind a push-mode sketchgw gateway — so CI can exercise the full
// cluster serving path with one binary and no orchestration.
//
// -chaos inserts chaosproxies (internal/loadgen/chaosproxy) between the
// gateway and the first -chaos-peers peer links (default 1) and runs the
// named failure scenario during the load phase:
//
//	flap        peer 0 alternates up/down (-flap-up/-flap-down), active
//	            connections reset on each down transition
//	correlated  all -chaos-peers proxied peers flap together in lockstep
//	            — a correlated failure (rack loss, AZ outage)
//	latency     every client→peer chunk is delayed by -chaos-latency
//	stall       the first response chunk of each connection is delayed
//
// Under -chaos flap/correlated the run is also a pass/fail availability
// check: the gateway must answer 100% of queries (stale or fresh — the
// serve-stale machinery's whole point), the breaker must be observed
// open or a stale serve recorded during the flap, and after the
// flapping stops the gateway must recover to all-peers-up, non-partial
// answers. With -replicas R > the number of flapped peers there is a
// fourth claim: quorum must hold, i.e. no query may ever report
// partial: true — every cell keeps a live owner throughout. Any
// violated verdict exits 1. Ingest requests routed to the dead peer
// legitimately fail during an unreplicated flap; they are reported but
// do not fail the scenario.
//
// See docs/load.md for the full flag reference, the report schema, and
// worked chaos scenarios.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/loadgen"
	"repro/internal/loadgen/chaosproxy"
	"repro/internal/server"
	"repro/internal/window"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main minus os.Exit so the exit paths stay testable.
func run(args []string) int {
	fs := flag.NewFlagSet("sketchload", flag.ContinueOnError)
	var (
		target  = fs.String("target", "", "base URL of a running sketchd/sketchgw to drive (mutually exclusive with -spawn)")
		spawn   = fs.Int("spawn", 0, "spin up this many in-process sketchd peers behind an in-process gateway and drive that")
		dim     = fs.Int("dim", 2, "point dimension")
		alpha   = fs.Float64("alpha", 1, "distance threshold α (spawn mode; must match the target otherwise)")
		seed    = fs.Uint64("seed", 1, "random seed for both the fleet and the traffic")
		shards  = fs.Int("shards", 2, "engine shards per spawned peer")
		conns   = fs.Int("conns", 4, "concurrent load connections")
		points  = fs.Int("points", 100000, "total points to ingest")
		batch   = fs.Int("batch", 200, "points per ingest request")
		qEvery  = fs.Int("query-every", 4, "one query per this many ingest batches (0 disables)")
		k       = fs.Int("k", 4, "samples per query")
		groups  = fs.Int("groups", 512, "distinct near-duplicate groups")
		zipfS   = fs.Float64("zipf", 1.2, "zipf exponent s>1 for group popularity")
		rate    = fs.Float64("rate", 0, "open-loop target points/s (0 = closed loop)")
		burst   = fs.Int("burst", 1, "batches per open-loop burst instant")
		windowW = fs.Int64("window", 0, "spawn time-window peers with width W and stamp ingest batches (0 = infinite window)")
		jitter  = fs.Int64("stamp-jitter", 0, "± stamp noise per windowed batch (keep below -window)")
		late    = fs.Float64("late", 0, "fraction of windowed batches stamped behind the frontier")
		chaos   = fs.String("chaos", "none", "failure scenario (spawn mode): none, flap, correlated, latency, stall")
		chaosN  = fs.Int("chaos-peers", 1, "how many peer links get a chaosproxy (correlated/latency/stall apply to all of them; flap flaps the first)")
		reps    = fs.Int("replicas", 1, "gateway replication factor (spawn mode): peers owning each routing cell")
		chaosD  = fs.Duration("chaos-latency", 50*time.Millisecond, "injected delay for -chaos latency/stall")
		flapUp  = fs.Duration("flap-up", 400*time.Millisecond, "up phase of -chaos flap")
		flapDn  = fs.Duration("flap-down", 400*time.Millisecond, "down phase of -chaos flap")
		stale   = fs.Duration("max-stale", 5*time.Second, "gateway -max-stale bound (spawn mode)")
		scrape  = fs.Bool("scrape", false, "snapshot the target's /metrics before and after the run and add the deltas to the report")
		out     = fs.String("out", "BENCH_load.json", "output report file")
		timeout = fs.Duration("timeout", 2*time.Minute, "overall run deadline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*target == "") == (*spawn == 0) {
		fmt.Fprintln(os.Stderr, "sketchload: exactly one of -target or -spawn is required")
		return 2
	}
	if *chaos != "none" && *spawn == 0 {
		fmt.Fprintln(os.Stderr, "sketchload: -chaos needs -spawn (the proxies sit between the spawned gateway and its peers)")
		return 2
	}
	switch *chaos {
	case "none", "flap", "correlated", "latency", "stall":
	default:
		fmt.Fprintf(os.Stderr, "sketchload: unknown -chaos %q (want none, flap, correlated, latency, or stall)\n", *chaos)
		return 2
	}
	if *spawn > 0 {
		if *chaosN < 1 || *chaosN > *spawn {
			fmt.Fprintf(os.Stderr, "sketchload: -chaos-peers %d out of range [1, %d]\n", *chaosN, *spawn)
			return 2
		}
		if *reps < 1 || *reps > *spawn {
			fmt.Fprintf(os.Stderr, "sketchload: -replicas %d out of range [1, %d]\n", *reps, *spawn)
			return 2
		}
	}

	if *windowW > 0 && *k > 1 {
		// WindowL0 answers single-sample queries only; a k>1 query is a
		// 400 on every windowed target, so clamp instead of failing the
		// whole run on the first query.
		log.Printf("sketchload: windowed sketches are single-sample, clamping -k %d → 1", *k)
		*k = 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cfg := loadgen.Config{
		Target:       *target,
		Dim:          *dim,
		Conns:        *conns,
		Points:       *points,
		BatchSize:    *batch,
		QueryEvery:   *qEvery,
		K:            *k,
		Groups:       *groups,
		ZipfS:        *zipfS,
		Rate:         *rate,
		Burst:        *burst,
		Windowed:     *windowW > 0,
		StampJitter:  *jitter,
		LateFraction: *late,
		Seed:         *seed,
	}

	var fl *fleet
	if *spawn > 0 {
		var err error
		chaosPeers := 0
		if *chaos != "none" {
			chaosPeers = *chaosN
		}
		fl, err = startFleet(fleetConfig{
			peers: *spawn, shards: *shards, dim: *dim, alpha: *alpha,
			seed: *seed, windowW: *windowW, maxStale: *stale,
			chaosPeers: chaosPeers, replicas: *reps,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sketchload:", err)
			return 2
		}
		defer fl.stop()
		cfg.Target = fl.gwURL
		log.Printf("sketchload: spawned %d peers (replicas %d) + gateway at %s", *spawn, *reps, fl.gwURL)
	}

	desc := fmt.Sprintf("sketchload conns=%d batch=%d zipf=%g groups=%d chaos=%s spawn=%d replicas=%d",
		*conns, *batch, *zipfS, *groups, *chaos, *spawn, *reps)

	// Warm the target before any chaos: the gateway needs at least one
	// complete fold to serve stale from, and verdicts about staleness
	// are meaningless against an empty cache.
	if fl != nil {
		if err := warmup(ctx, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "sketchload: warmup:", err)
			return 2
		}
	}

	// -scrape brackets the load phase (after warmup, before chaos) so
	// the deltas attribute server-side work to this run alone.
	var before map[string]float64
	scrapeClient := &http.Client{Timeout: 5 * time.Second}
	if *scrape {
		var err error
		if before, err = loadgen.ScrapeMetrics(scrapeClient, cfg.Target); err != nil {
			fmt.Fprintln(os.Stderr, "sketchload: -scrape:", err)
			return 2
		}
	}

	var (
		mon      *statsMonitor
		stopFlap func()
	)
	switch *chaos {
	case "flap":
		mon = monitorStats(ctx, cfg.Target)
		stopFlap = fl.proxies[0].Flap(*flapUp, *flapDn)
		log.Printf("sketchload: flapping peer 0 (%v up / %v down)", *flapUp, *flapDn)
	case "correlated":
		mon = monitorStats(ctx, cfg.Target)
		stops := make([]func(), len(fl.proxies))
		for i, p := range fl.proxies {
			stops[i] = p.Flap(*flapUp, *flapDn)
		}
		stopFlap = func() {
			for _, s := range stops {
				s()
			}
		}
		log.Printf("sketchload: flapping peers 0..%d together (%v up / %v down)", len(fl.proxies)-1, *flapUp, *flapDn)
	case "latency":
		for _, p := range fl.proxies {
			p.SetLatency(*chaosD)
		}
	case "stall":
		for _, p := range fl.proxies {
			p.SetStall(*chaosD)
		}
	}

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchload:", err)
		return 2
	}
	log.Printf("sketchload: %d points in %v (%.0f pts/s), %d queries (%.0f q/s), %d ingest errors, %d query errors",
		res.Points, res.Elapsed.Round(time.Millisecond), res.IngestRate(),
		res.Queries, res.QueryRate(), res.IngestErrors, res.QueryErrors)

	rep := loadgen.BuildReport(res, desc, fmt.Sprintf("%dpts", *points))

	if *scrape {
		after, err := loadgen.ScrapeMetrics(scrapeClient, cfg.Target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sketchload: -scrape:", err)
			return 2
		}
		stages := loadgen.StageDeltas(loadgen.MetricsDelta(before, after))
		rep.Append("Load/server", loadgen.HistSnapshot{Count: 1}, 0, 0, stages)
		log.Printf("sketchload: scraped %d server-side deltas from %s/metrics", len(stages), cfg.Target)
	}

	exit := 0
	if *chaos == "flap" || *chaos == "correlated" {
		flapped := 1
		if *chaos == "correlated" {
			flapped = len(fl.proxies)
		}
		verdict, ok := flapVerdict(ctx, cfg, fl, mon, stopFlap, res, *reps, flapped)
		rep.Append("Load/chaos-flap", loadgen.HistSnapshot{Count: 1}, 0, 0, verdict)
		if !ok {
			exit = 1
		}
	}

	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "sketchload:", err)
		return 2
	}
	log.Printf("sketchload: report → %s", *out)
	return exit
}

// warmup pushes one small batch through the target and waits for a 200
// query so the serving cache holds a complete fold.
func warmup(ctx context.Context, cfg loadgen.Config) error {
	w := cfg
	w.Points = 4 * w.BatchSize
	w.QueryEvery = 1
	w.Conns = 1
	w.Rate = 0
	res, err := loadgen.Run(ctx, w)
	if err != nil {
		return err
	}
	if res.IngestErrors > 0 || res.QueryErrors > 0 || res.Queries == 0 {
		return fmt.Errorf("target not healthy before chaos: %d/%d ingest errors, %d/%d query errors",
			res.IngestErrors, res.Points, res.QueryErrors, res.Queries)
	}
	return nil
}

// flapVerdict evaluates the chaos scenario's claims and returns them as
// report metrics (1 pass / 0 fail) plus the overall pass. The first
// three claims always apply; the quorum claim arms only when the
// replication factor exceeds the number of flapped peers — then every
// cell provably kept a live owner, so no query may have been partial.
func flapVerdict(ctx context.Context, cfg loadgen.Config, fl *fleet, mon *statsMonitor, stopFlap func(), res *loadgen.Result, replicas, flapped int) (map[string]float64, bool) {
	// Claim 1: every query during the flap was answered.
	available := res.Queries > 0 && res.QueryErrors == 0

	// Claim 2: the degradation machinery actually engaged — the breaker
	// was observed open, or a stale serve was recorded.
	mon.stop()
	degraded := mon.sawBreakerOpen.Load() || mon.sawStaleServe.Load()

	// Claim 3: with the proxies back up, the gateway re-folds to
	// all-peers-up, non-partial answers.
	stopFlap()
	recovered := waitRecovered(ctx, cfg, fl.peerCount)

	// Claim 4 (replicated runs only): quorum held — the partial-query
	// counter never moved while peers flapped, because every cell kept a
	// live owner among its R replicas.
	quorumArmed := replicas > flapped
	quorumHeld := !mon.sawPartialGrowth.Load()

	ok := available && degraded && recovered && (!quorumArmed || quorumHeld)
	verdict := map[string]float64{
		"available":        b2f(available),
		"degraded-serving": b2f(degraded),
		"recovered":        b2f(recovered),
		"max-staleness-ms": float64(res.MaxStalenessMS),
		"ingest-errors":    float64(res.IngestErrors),
	}
	if quorumArmed {
		verdict["quorum-held"] = b2f(quorumHeld)
		log.Printf("sketchload: chaos verdict: available=%v degraded-but-serving=%v recovered=%v quorum-held=%v (max staleness served %dms)",
			available, degraded, recovered, quorumHeld, res.MaxStalenessMS)
	} else {
		log.Printf("sketchload: chaos verdict: available=%v degraded-but-serving=%v recovered=%v (max staleness served %dms)",
			available, degraded, recovered, res.MaxStalenessMS)
	}
	return verdict, ok
}

// waitRecovered polls the gateway until every peer is up and a query
// answers non-partial, or 30s pass.
func waitRecovered(ctx context.Context, cfg loadgen.Config, peers int) bool {
	deadline := time.Now().Add(30 * time.Second)
	client := &http.Client{Timeout: 5 * time.Second}
	for time.Now().Before(deadline) && ctx.Err() == nil {
		var st cluster.StatsResponse
		if getJSON(client, cfg.Target+"/stats", &st) == nil && st.PeersUp == peers {
			var q struct {
				Partial bool `json:"partial"`
			}
			if getJSON(client, fmt.Sprintf("%s/query?k=%d", cfg.Target, cfg.K), &q) == nil && !q.Partial {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

// statsMonitor samples the gateway's /stats during the chaos phase and
// latches whether the breaker was ever seen open, whether any stale
// serve was recorded, and whether the partial-query counter grew past
// its first sample (the warmup may have raced a not-yet-complete fold,
// so the baseline is the first observation, not zero).
type statsMonitor struct {
	sawBreakerOpen   atomic.Bool
	sawStaleServe    atomic.Bool
	sawPartialGrowth atomic.Bool
	cancel           context.CancelFunc
	done             chan struct{}
}

func monitorStats(ctx context.Context, target string) *statsMonitor {
	ctx, cancel := context.WithCancel(ctx)
	m := &statsMonitor{cancel: cancel, done: make(chan struct{})}
	client := &http.Client{Timeout: 2 * time.Second}
	go func() {
		defer close(m.done)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		partialBase := int64(-1)
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			var st cluster.StatsResponse
			if getJSON(client, target+"/stats", &st) != nil {
				continue
			}
			if st.StaleServes > 0 {
				m.sawStaleServe.Store(true)
			}
			if partialBase < 0 {
				partialBase = st.PartialQueries
			} else if st.PartialQueries > partialBase {
				m.sawPartialGrowth.Store(true)
			}
			for _, p := range st.Peers {
				if !p.Up {
					m.sawBreakerOpen.Store(true)
				}
			}
		}
	}()
	return m
}

func (m *statsMonitor) stop() {
	m.cancel()
	<-m.done
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// fleetConfig shapes an in-process peer fleet.
type fleetConfig struct {
	peers      int
	shards     int
	dim        int
	alpha      float64
	seed       uint64
	windowW    int64
	maxStale   time.Duration
	chaosPeers int // peer links fronted by a chaosproxy (0 = none)
	replicas   int // gateway replication factor (0 = default 1)
}

// fleet is a self-contained serving topology on loopback ports: N
// sketchd peers, optional chaosproxies in front of the first links, and
// a push-mode gateway federating them.
type fleet struct {
	engines   []*engine.Engine
	servers   []*http.Server
	gw        *cluster.Gateway
	gwSrv     *http.Server
	gwURL     string
	proxies   []*chaosproxy.Proxy
	peerCount int
}

func startFleet(fc fleetConfig) (*fleet, error) {
	opts := core.Options{
		Alpha:       fc.alpha,
		Dim:         fc.dim,
		StreamBound: 1 << 20,
		K:           8,
		Seed:        fc.seed,
		HighDim:     true,
	}
	fl := &fleet{peerCount: fc.peers}
	ecfg := engine.Config{Shards: fc.shards}
	windowed := fc.windowW > 0
	win := window.Window{Kind: window.Time, W: fc.windowW}
	peerURLs := make([]string, fc.peers)
	for i := 0; i < fc.peers; i++ {
		var (
			eng *engine.Engine
			err error
		)
		if windowed {
			eng, err = engine.NewWindowSamplerEngine(opts, win, ecfg)
		} else {
			eng, err = engine.NewSamplerEngine(opts, ecfg)
		}
		if err != nil {
			fl.stop()
			return nil, err
		}
		fl.engines = append(fl.engines, eng)
		srv, err := server.New(server.Config{Engine: eng, Dim: fc.dim, Windowed: windowed})
		if err != nil {
			fl.stop()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fl.stop()
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		fl.servers = append(fl.servers, hs)
		peerURLs[i] = "http://" + ln.Addr().String()
	}

	gwPeers := append([]string(nil), peerURLs...)
	for i := 0; i < fc.chaosPeers; i++ {
		p, err := chaosproxy.New(peerURLs[i])
		if err != nil {
			fl.stop()
			return nil, err
		}
		fl.proxies = append(fl.proxies, p)
		gwPeers[i] = p.URL()
	}

	router, err := engine.NewRouterFromOptions(core.Options{Alpha: fc.alpha, Dim: fc.dim, Seed: fc.seed})
	if err != nil {
		fl.stop()
		return nil, err
	}
	gw, err := cluster.New(cluster.Config{
		Peers:          gwPeers,
		Router:         router,
		Dim:            fc.dim,
		Replicas:       fc.replicas,
		HandoffRetry:   100 * time.Millisecond,
		Partial:        cluster.PartialDegrade,
		RequestTimeout: 2 * time.Second,
		Retries:        cluster.NoRetries,
		RetryBackoff:   20 * time.Millisecond,
		DownAfter:      2,
		DownCooldown:   200 * time.Millisecond,
		Push:           true,
		MaxStale:       fc.maxStale,
		WatchTimeout:   5 * time.Second,
		PollInterval:   100 * time.Millisecond,
	})
	if err != nil {
		fl.stop()
		return nil, err
	}
	fl.gw = gw
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fl.stop()
		return nil, err
	}
	fl.gwSrv = &http.Server{Handler: gw}
	go fl.gwSrv.Serve(ln)
	fl.gwURL = "http://" + ln.Addr().String()
	return fl, nil
}

// stop tears the fleet down in dependency order: gateway first (its
// watchers hold peer connections), then the proxies, then the peers.
func (fl *fleet) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if fl.gwSrv != nil {
		fl.gwSrv.Shutdown(ctx)
	}
	if fl.gw != nil {
		fl.gw.Close()
	}
	for _, p := range fl.proxies {
		p.Close()
	}
	for _, hs := range fl.servers {
		hs.Shutdown(ctx)
	}
	for _, eng := range fl.engines {
		eng.Close()
	}
}
