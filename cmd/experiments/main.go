// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6) plus this repository's extensions, printing one
// text table per experiment. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	experiments -exp dist  [-dataset rand5] [-runs N] [-seed S]   Figures 5–12, 15
//	experiments -exp time  [-runs N]                              Figure 13
//	experiments -exp space [-runs N]                              Figure 14
//	experiments -exp bias  [-runs N]                              §1 motivation
//	experiments -exp swdist [-window W] [-groups G] [-runs N]     Theorem 2.7 extension
//	experiments -exp swspace [-window W]                          Theorem 2.7 extension
//	experiments -exp f0     [-eps E]                              Section 5
//	experiments -exp f0win  [-window W] [-groups G] [-eps E]      Section 5
//	experiments -exp ablate [-runs N]                             design ablations
//	experiments -exp engine [-shards P] [-runs scans]             sharded engine scaling
//	experiments -exp all                                          everything above
//
// Paper-scale run counts (200k–500k) reproduce Figure 15's headline
// numbers but take hours; the defaults are sized for minutes. All
// randomness derives from -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: dist|time|space|bias|swdist|swspace|f0|f0win|ablate|general|all")
		ds      = flag.String("dataset", "", "restrict to one dataset (rand5, rand20, yacht, seeds, rand5-pl, ...)")
		runs    = flag.Int("runs", 0, "number of runs (0 = per-experiment default)")
		seed    = flag.Uint64("seed", 1, "root random seed")
		windowW = flag.Int64("window", 1024, "sliding window size")
		groups  = flag.Int("groups", 64, "live groups for sliding-window experiments")
		eps     = flag.Float64("eps", 0.25, "accuracy parameter for F0 experiments")
		csvOut  = flag.String("csv", "", "for -exp dist: write per-group frequencies (the Figures 5–12 series) to this CSV file")
		shards  = flag.Int("shards", 0, "for -exp engine: max shard count to sweep (0 = scale with cores)")
	)
	flag.Parse()

	specs := dataset.AllSpecs()
	if *ds != "" {
		s, err := dataset.SpecByName(*ds)
		if err != nil {
			fatal(err)
		}
		specs = []dataset.Spec{s}
	}

	run := func(name string, f func() error) {
		switch *exp {
		case name, "all":
			if err := f(); err != nil {
				fatal(err)
			}
		}
	}
	known := map[string]bool{"dist": true, "time": true, "space": true, "bias": true,
		"swdist": true, "swspace": true, "f0": true, "f0win": true, "ablate": true,
		"general": true, "engine": true, "all": true}
	if !known[*exp] {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	run("dist", func() error { return distExp(specs, orDefault(*runs, 2000), *seed, *csvOut) })
	run("time", func() error { return timeExp(specs, orDefault(*runs, 20), *seed) })
	run("space", func() error { return spaceExp(specs, orDefault(*runs, 20), *seed) })
	run("bias", func() error { return biasExp(specs, orDefault(*runs, 1000), *seed) })
	run("swdist", func() error { return swDistExp(specs, orDefault(*runs, 500), *windowW, *groups, *seed) })
	run("swspace", func() error { return swSpaceExp(specs, *windowW, *seed) })
	run("f0", func() error { return f0Exp(specs, *eps, *seed) })
	run("f0win", func() error { return f0WinExp(specs, *windowW, *groups, *eps, *seed) })
	run("ablate", func() error { return ablateExp(specs, orDefault(*runs, 300), *seed) })
	run("general", func() error { return generalExp(orDefault(*runs, 2000), *seed) })
	run("engine", func() error { return engineExp(specs, *shards, orDefault(*runs, 10), *seed) })
}

func engineExp(specs []dataset.Spec, maxShards, scans int, seed uint64) error {
	if maxShards <= 0 {
		maxShards = experiments.MaxEngineShards()
	}
	w := table("Extension: sharded streaming engine — ingestion scaling and merged-snapshot accuracy",
		"dataset", "shards", "points", "elapsed", "pts/s", "estimate", "relErr", "imbalance")
	for _, s := range specs {
		rs, err := experiments.EngineScaling(s, maxShards, scans, seed)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.0f\t%.0f\t%.3f\t%.2f\n",
				r.Dataset, r.Shards, r.Points, r.Elapsed.Round(time.Millisecond),
				r.Throughput, r.Estimate, r.RelErr, r.Imbalance)
		}
	}
	return w.Flush()
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func table(header string, cols ...string) *tabwriter.Writer {
	fmt.Printf("\n== %s ==\n", header)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	return w
}

func distExp(specs []dataset.Spec, runs int, seed uint64, csvOut string) error {
	var csv *os.File
	if csvOut != "" {
		var err error
		csv, err = os.Create(csvOut)
		if err != nil {
			return err
		}
		defer csv.Close()
		fmt.Fprintln(csv, "dataset,group,frequency")
	}
	w := table("Figures 5–12 & 15: empirical sampling distribution (paper: stdDevNm ≤ 0.1, maxDevNm ≤ 0.2 at 200k–500k runs)",
		"dataset", "runs", "groups", "stream", "stdDevNm", "noiseFloor", "maxDevNm", "minFreq", "maxFreq", "misses")
	for _, s := range specs {
		r, err := experiments.Dist(s, runs, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.5f\t%.5f\t%d\n",
			r.Dataset, r.Runs, r.Groups, r.StreamLen, r.StdDevNm, r.NoiseFloor, r.MaxDevNm, r.MinFreq, r.MaxFreq, r.Misses)
		if csv != nil {
			for g, f := range r.Freqs {
				fmt.Fprintf(csv, "%s,%d,%.6f\n", r.Dataset, g, f)
			}
		}
	}
	return w.Flush()
}

func timeExp(specs []dataset.Spec, runs int, seed uint64) error {
	w := table("Figure 13: pTime — processing time per item (single thread)",
		"dataset", "runs", "stream", "perItem")
	for _, s := range specs {
		r, err := experiments.PTime(s, runs, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\n", r.Dataset, r.Runs, r.StreamLen, r.PerItem)
	}
	return w.Flush()
}

func spaceExp(specs []dataset.Spec, runs int, seed uint64) error {
	w := table("Figure 14: pSpace — peak sketch size (words)",
		"dataset", "runs", "stream", "meanPeak", "worstPeak")
	for _, s := range specs {
		r, err := experiments.PSpace(s, runs, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%d\n", r.Dataset, r.Runs, r.StreamLen, r.PeakWords, r.MaxWords)
	}
	return w.Flush()
}

func biasExp(specs []dataset.Spec, runs int, seed uint64) error {
	w := table("§1 motivation: robust sampler vs standard min-rank ℓ0-sampler on noisy data",
		"dataset", "runs", "robust maxDevNm", "minrank maxDevNm", "P[heavy] robust", "P[heavy] minrank", "uniform target")
	for _, s := range specs {
		r, err := experiments.Bias(s, runs, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.4f\t%.4f\t%.4f\n",
			r.Dataset, r.Runs, r.RobustMaxDevNm, r.MinRankMaxDevNm,
			r.RobustHeavyFreq, r.MinRankHeavyFreq, r.UniformTarget)
	}
	return w.Flush()
}

func swDistExp(specs []dataset.Spec, runs int, windowW int64, groups int, seed uint64) error {
	w := table("Extension: sliding-window sampling uniformity (Theorem 2.7)",
		"dataset", "runs", "window", "liveGroups", "stdDevNm", "maxDevNm", "misses")
	for _, s := range specs {
		r, err := experiments.SWDist(s, runs, windowW, groups, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.4f\t%.4f\t%d\n",
			r.Dataset, r.Runs, r.WindowSize, r.LiveGroups, r.StdDevNm, r.MaxDevNm, r.Misses)
	}
	return w.Flush()
}

func swSpaceExp(specs []dataset.Spec, windowW int64, seed uint64) error {
	w := table("Extension: sliding-window space, every point a fresh group (O(log w · log m) words)",
		"dataset", "window", "groupsInWin", "peakWords", "levels", "threshold")
	for _, s := range specs {
		r, err := experiments.SWSpace(s, windowW, int(3*windowW), seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Dataset, r.WindowSize, r.GroupsInWin, r.PeakWords, r.Levels, r.ThresholdWord)
	}
	return w.Flush()
}

func f0Exp(specs []dataset.Spec, eps float64, seed uint64) error {
	w := table("Section 5: robust F0 vs classic estimators on noisy streams",
		"dataset", "groups(truth)", "stream", "robust est", "relErr", "KMV", "HLL")
	for _, s := range specs {
		r, err := experiments.F0Infinite(s, eps, 9, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.3f\t%.0f\t%.0f\n",
			r.Dataset, r.Truth, r.Stream, r.RobustEstimate, r.RobustRelErr, r.KMVEstimate, r.HLLEstimate)
	}
	return w.Flush()
}

func f0WinExp(specs []dataset.Spec, windowW int64, groups int, eps float64, seed uint64) error {
	w := table("Section 5: sliding-window robust F0",
		"dataset", "window", "liveGroups", "estimate", "relErr", "copies")
	for _, s := range specs {
		r, err := experiments.F0Window(s, windowW, groups, eps, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.3f\t%d\n",
			r.Dataset, r.WindowSize, r.LiveGroups, r.Estimate, r.RelErr, r.Copies)
	}
	return w.Flush()
}

func ablateExp(specs []dataset.Spec, runs int, seed uint64) error {
	// Ablations are single-dataset sweeps; use the first spec.
	s := specs[0]
	w := table(fmt.Sprintf("Ablations on %s: hash family, κ0, grid side", s.Name()),
		"variant", "runs", "stdDevNm", "maxDevNm", "perItem", "peakWords")
	emit := func(rs []experiments.AblationResult, err error) error {
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%v\t%.0f\n",
				r.Variant, r.Runs, r.StdDevNm, r.MaxDevNm, r.PerItem, r.PeakWords)
		}
		return nil
	}
	if err := emit(experiments.AblateHash(s, runs, seed)); err != nil {
		return err
	}
	if err := emit(experiments.AblateKappa(s, runs, seed)); err != nil {
		return err
	}
	if err := emit(experiments.AblateGridSide(s, runs, seed)); err != nil {
		return err
	}
	return w.Flush()
}

func generalExp(runs int, seed uint64) error {
	w := table("Theorem 3.1: general (non-separated) data — per-point ball-hit probability is Θ(1/F0)",
		"points", "alpha", "runs", "greedyGroups", "minBallFreq", "maxBallFreq", "1/groups", "spread")
	for _, cfg := range []struct {
		points int
		alpha  float64
	}{{100, 0.3}, {200, 0.3}, {200, 0.5}} {
		r, err := experiments.GeneralBall(cfg.points, 2, cfg.alpha, runs, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%g\t%d\t%d\t%.5f\t%.5f\t%.5f\t%.1f\n",
			r.Points, r.Alpha, r.Runs, r.GreedyGroups, r.MinBallFreq, r.MaxBallFreq, r.UniformRef, r.SpreadFactor)
	}
	return w.Flush()
}
