// Command l0sample streams points and prints robust ℓ0-samples: distinct
// samples where all points within distance -alpha count as one element.
//
// Input is read from -in (or stdin): one point per line, whitespace- or
// comma-separated coordinates; blank lines and lines starting with '#' are
// skipped. Alternatively -dataset generates one of the paper's workloads.
//
//	l0sample -alpha 0.5 -dim 3 < points.txt
//	l0sample -dataset rand5 -k 3
//	l0sample -alpha 0.5 -dim 2 -window 1000 < points.txt
//	l0sample -dataset rand5 -shards 8
//	l0sample -dataset rand5 -window 1000 -window-kind time -shards 8
//
// With -window W a sliding-window sampler is used and a sample of the last
// W points is printed at end of stream; otherwise the whole stream is
// sampled. -k requests k samples without replacement. With -shards P > 1
// the stream is partitioned across P parallel sketch workers by the
// sharded engine and queries are answered from the merged snapshot;
// windows can be sharded only with -window-kind time (each point's
// arrival index is used as its timestamp, so the window semantics match
// the sequence window on this input), sequence windows only run
// single-threaded.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/pointio"
	"repro/internal/window"
	"repro/pkg/sketch"
)

func main() {
	var (
		alpha   = flag.Float64("alpha", 1, "distance threshold α: points within α are near-duplicates")
		dim     = flag.Int("dim", 0, "point dimension (required for -in/stdin input)")
		in      = flag.String("in", "", "input file (default stdin) with one point per line")
		ds      = flag.String("dataset", "", "generate a paper workload instead of reading input (rand5, yacht-pl, ...)")
		k       = flag.Int("k", 1, "number of samples without replacement")
		seed    = flag.Uint64("seed", 1, "random seed")
		windowW = flag.Int64("window", 0, "sliding window size (0 = infinite window)")
		windowK = flag.String("window-kind", "sequence", "window semantics: sequence (last W points) or time (stamps = arrival indices; shardable)")
		highDim = flag.Bool("highdim", true, "use the d·α grid (Section 4); set false for the α/2 grid (Section 2.1)")
		random  = flag.Bool("random-rep", false, "return a random point of the sampled group instead of its first point")
		shards  = flag.Int("shards", 1, "partition the stream across N parallel sketch workers (infinite window or -window-kind time)")
	)
	flag.Parse()

	pts, opts, err := loadInput(*ds, *in, *alpha, *dim, *seed, *highDim, *random, *k)
	if err != nil {
		fatal(err)
	}

	if *windowW > 0 {
		kind, err := window.ParseKind(*windowK)
		if err != nil {
			fatal(err)
		}
		win := window.Window{Kind: kind, W: *windowW}
		if *shards > 1 {
			if win.Kind != window.Time {
				fatal(fmt.Errorf("%w: drop -shards to run the sequence-window sampler single-threaded, use -window-kind time, or drop -window to shard the infinite-window sampler (see docs/engine.md, \"Limitations\")", engine.ErrWindowedSharding))
			}
			runWindowedEngine(opts, win, *shards, pts)
			return
		}
		ws, err := sketch.NewWindowL0(opts, win)
		if err != nil {
			fatal(err)
		}
		if win.Kind == window.Time {
			ws.ProcessStampedBatch(pts, pointio.IndexStamps(len(pts)))
		} else {
			ws.ProcessBatch(pts)
		}
		res, err := ws.Query()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("window sample (last %d of %d points): %v\n", *windowW, len(pts), res.Sample)
		fmt.Printf("space: %d words peak, %d levels\n",
			ws.WindowSampler().PeakSpaceWords(), ws.WindowSampler().Levels())
		return
	}

	if *shards > 1 {
		eng, err := engine.NewSamplerEngine(opts, engine.Config{Shards: *shards})
		if err != nil {
			fatal(err)
		}
		eng.ProcessBatch(pts)
		snap, err := eng.Snapshot()
		if err != nil {
			fatal(err)
		}
		samples, err := snap.(*sketch.L0).QueryK(*k)
		if err != nil {
			fatal(err)
		}
		for i, q := range samples {
			fmt.Printf("sample %d: %v\n", i+1, q)
		}
		st := eng.Stats()
		fmt.Printf("stream: %d points over %d shards (%.0f pts/s); merged sketch: %d words\n",
			st.Processed, st.Shards, st.Throughput, snap.Space())
		eng.Close()
		return
	}

	l0, err := sketch.NewL0(opts)
	if err != nil {
		fatal(err)
	}
	l0.ProcessBatch(pts)
	samples, err := l0.QueryK(*k)
	if err != nil {
		fatal(err)
	}
	for i, q := range samples {
		fmt.Printf("sample %d: %v\n", i+1, q)
	}
	s := l0.Sampler()
	fmt.Printf("stream: %d points; sketch: |Sacc|=%d |Srej|=%d R=%d peak=%d words\n",
		s.Processed(), s.AcceptSize(), s.RejectSize(), s.R(), s.PeakSpaceWords())
}

// runWindowedEngine partitions an index-stamped stream across a sharded
// time-window engine and prints a sample from the merged snapshot.
func runWindowedEngine(opts core.Options, win window.Window, shards int, pts []geom.Point) {
	eng, err := engine.NewWindowSamplerEngine(opts, win, engine.Config{Shards: shards})
	if err != nil {
		fatal(err)
	}
	eng.ProcessStampedBatch(pts, pointio.IndexStamps(len(pts)))
	res, err := eng.Query()
	if err != nil {
		fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("window sample (last %d of %d points): %v\n", win.W, len(pts), res.Sample)
	fmt.Printf("stream: %d points over %d shards (%.0f pts/s)\n", st.Processed, st.Shards, st.Throughput)
	eng.Close()
}

func loadInput(ds, in string, alpha float64, dim int, seed uint64, highDim, random bool, k int) ([]geom.Point, core.Options, error) {
	if ds != "" {
		spec, err := dataset.SpecByName(ds)
		if err != nil {
			return nil, core.Options{}, err
		}
		inst := dataset.Build(spec, seed)
		return inst.Points, core.Options{
			Alpha:                inst.Alpha,
			Dim:                  spec.Base.Dim(),
			StreamBound:          len(inst.Points) + 1,
			Seed:                 seed,
			HighDim:              highDim,
			K:                    k,
			RandomRepresentative: random,
		}, nil
	}
	if dim < 1 {
		return nil, core.Options{}, fmt.Errorf("-dim is required when reading points from input")
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, core.Options{}, err
		}
		defer f.Close()
		r = f
	}
	pts, err := pointio.ReadPoints(r, dim)
	if err != nil {
		return nil, core.Options{}, err
	}
	return pts, core.Options{
		Alpha:                alpha,
		Dim:                  dim,
		StreamBound:          len(pts) + 1,
		Seed:                 seed,
		HighDim:              highDim,
		K:                    k,
		RandomRepresentative: random,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "l0sample:", err)
	os.Exit(1)
}
