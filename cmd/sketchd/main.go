// Command sketchd is the network-facing ingest and query daemon: a sharded
// robust-sketch engine behind an HTTP API. Points arrive over the wire in
// NDJSON or binary batches, queries are answered from a cached merged
// snapshot, and the full engine state survives restarts through
// checkpoint files.
//
//	sketchd -dim 2 -alpha 0.5 -shards 8 -checkpoint /var/lib/sketchd.ckpt
//	sketchd -dim 2 -alpha 0.5 -shards 8 -checkpoint /var/lib/sketchd.ckpt -restore
//	sketchd -dim 3 -sketch f0 -eps 0.2 -copies 9
//	sketchd -dim 2 -alpha 0.5 -shards 8 -window 3600 -window-kind time
//
// Endpoints (full reference and a worked curl session in docs/server.md):
//
//	POST /ingest      point batches (NDJSON lines or packed float64s)
//	GET  /query       robust sample + distinct estimate (?k= for k samples)
//	GET  /sketch      serialized merged snapshot (cluster federation hook)
//	GET  /stats       engine + server counters
//	POST /checkpoint  atomically persist engine state to -checkpoint
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus text exposition (disable with -metrics=false)
//
// With -window W (time-based windows only) the daemon serves the sliding
// window of the last W time units instead of the whole stream: each
// ingest batch is stamped with the client's X-Sketch-Stamp header or the
// server clock in Unix seconds, expired points fall out of queries, and
// windowed state checkpoints and federates like every other family.
// Sequence windows cannot be sharded (run cmd/l0sample or cmd/f0est
// single-threaded instead; see docs/engine.md "Limitations").
//
// With -checkpoint-every the daemon also checkpoints continuously in the
// background (atomic writes, safe under live traffic), bounding data loss
// on a crash to one interval.
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains the
// engine, and — when -save-on-exit is set — writes a final checkpoint, so
// a subsequent -restore resumes exactly where the stream left off.
// Restoring requires the same -sketch family, options, and seed as the
// checkpointing run; -shards may differ (the checkpointed state is
// re-routed onto the new shard layout with identical query results).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/window"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "listen address")
		kind      = flag.String("sketch", "l0", "sketch family per shard: l0 (robust sampler) or f0 (robust distinct-count estimator)")
		alpha     = flag.Float64("alpha", 1, "distance threshold α: points within α are near-duplicates")
		dim       = flag.Int("dim", 0, "point dimension (required)")
		m         = flag.Int("m", 1<<20, "stream-length bound m sizing thresholds and hash independence")
		kappa     = flag.Int("kappa", 0, "accept-set threshold constant κ0 (0 = default)")
		k         = flag.Int("k", 1, "samples without replacement to support per query (l0 only)")
		eps       = flag.Float64("eps", 0.25, "target accuracy (1±ε) of the f0 estimator")
		copies    = flag.Int("copies", 9, "median-boosting copies of the f0 estimator")
		seed      = flag.Uint64("seed", 1, "random seed (must match across checkpoint/restore)")
		shards    = flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS; must match across checkpoint/restore)")
		batch     = flag.Int("batch", 256, "points per worker batch")
		queue     = flag.Int("queue", 4, "batches buffered per shard before producers block")
		ckpt      = flag.String("checkpoint", "", "checkpoint file written by POST /checkpoint (empty disables)")
		restore   = flag.Bool("restore", false, "restore engine state from -checkpoint at startup")
		saveEnd   = flag.Bool("save-on-exit", false, "write a final checkpoint to -checkpoint on graceful shutdown")
		ckptEvery = flag.Duration("checkpoint-every", 0, "write a background checkpoint to -checkpoint at this interval (0 disables)")
		windowW   = flag.Int64("window", 0, "serve a sliding window of the last W time units instead of the whole stream (0 = infinite window)")
		windowK   = flag.String("window-kind", "time", "window semantics for -window: only \"time\" can be sharded (sequence windows: use cmd/l0sample or cmd/f0est single-threaded)")
		metrics   = flag.Bool("metrics", true, "expose Prometheus metrics on GET /metrics")
		slowQ     = flag.Duration("slow-query", 0, "log requests slower than this as JSON lines on stderr (0 disables)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()

	var win window.Window
	if *windowW > 0 {
		kind, err := window.ParseKind(*windowK)
		if err != nil {
			fatal(err)
		}
		if kind != window.Time {
			fatal(fmt.Errorf("%w; run cmd/l0sample or cmd/f0est without -shards for sequence-window queries",
				engine.ErrWindowedSharding))
		}
		win = window.Window{Kind: kind, W: *windowW}
	}
	if *dim < 1 {
		fatal(fmt.Errorf("-dim is required"))
	}
	if *ckptEvery < 0 {
		fatal(fmt.Errorf("-checkpoint-every must be positive, got %v", *ckptEvery))
	}
	if (*restore || *saveEnd || *ckptEvery > 0) && *ckpt == "" {
		fatal(fmt.Errorf("-restore, -save-on-exit, and -checkpoint-every need -checkpoint"))
	}

	opts := core.Options{
		Alpha:       *alpha,
		Dim:         *dim,
		StreamBound: *m,
		Kappa:       *kappa,
		K:           *k,
		Seed:        *seed,
		HighDim:     true,
	}
	var (
		eng *engine.Engine
		err error
	)
	cfg := engine.Config{Shards: *shards, BatchSize: *batch, QueueDepth: *queue}
	windowed := *windowW > 0
	switch {
	case *kind == "l0" && windowed:
		eng, err = engine.NewWindowSamplerEngine(opts, win, cfg)
	case *kind == "l0":
		eng, err = engine.NewSamplerEngine(opts, cfg)
	case *kind == "f0" && windowed:
		eng, err = engine.NewWindowF0Engine(opts, win, *eps, cfg)
	case *kind == "f0":
		eng, err = engine.NewF0Engine(opts, *eps, *copies, cfg)
	default:
		err = fmt.Errorf("unknown -sketch %q (want l0 or f0)", *kind)
	}
	if err != nil {
		fatal(err)
	}

	if *restore {
		if err := eng.RestoreFile(*ckpt); err != nil {
			fatal(err)
		}
		log.Printf("restored %d points from %s", eng.Stats().Enqueued, *ckpt)
	}

	srv, err := server.New(server.Config{
		Engine:         eng,
		Dim:            *dim,
		CheckpointPath: *ckpt,
		Restored:       *restore,
		Windowed:       windowed,
		NoMetrics:      !*metrics,
		SlowQuery:      *slowQ,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	if *pprofAddr != "" {
		go func() {
			log.Printf("sketchd: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, telemetry.PprofHandler()); err != nil {
				log.Printf("sketchd: pprof: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background periodic checkpointing: CheckpointFile is atomic (temp +
	// fsync + rename) and safe under concurrent ingest, so the ticker can
	// fire while traffic flows. The goroutine exits on shutdown and is
	// awaited before the final drain, so it never races Close.
	var ckptWG sync.WaitGroup
	if *ckptEvery > 0 {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					size, points, err := eng.CheckpointFile(*ckpt)
					if err != nil {
						log.Printf("sketchd: periodic checkpoint: %v", err)
						continue
					}
					log.Printf("sketchd: periodic checkpoint: %d points, %d bytes to %s", points, size, *ckpt)
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		desc := *kind
		if windowed {
			desc = fmt.Sprintf("%s over a %v window of %d", *kind, win.Kind, win.W)
		}
		ver, commit := telemetry.BuildInfo()
		log.Printf("sketchd: build %s (%s), %s engine, %d shards, listening on %s", ver, commit, desc, eng.Stats().Shards, *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("sketchd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		// In-flight handlers may still be mid-ingest: draining,
		// checkpointing, or closing the engine now would race them
		// (Close must not run concurrently with ProcessBatch). Exit
		// without touching the engine; the previous checkpoint on disk
		// stays valid.
		log.Printf("sketchd: shutdown: %v; skipping final drain/checkpoint", err)
		os.Exit(1)
	}
	ckptWG.Wait()
	eng.Drain()
	if *saveEnd {
		size, points, err := eng.CheckpointFile(*ckpt)
		if err != nil {
			fatal(err)
		}
		log.Printf("sketchd: final checkpoint: %d points, %d bytes to %s", points, size, *ckpt)
	}
	eng.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sketchd:", err)
	os.Exit(1)
}
