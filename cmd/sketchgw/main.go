// Command sketchgw is the cluster gateway: it federates a fleet of
// sketchd daemons behind one endpoint with the same HTTP API, so clients
// are oblivious to whether they talk to one node or a cluster. Ingest
// batches are routed so each point lands on exactly one peer (by the same
// routing grid the peers shard with internally); queries scatter to all
// live peers, gather their serialized sketches, and answer from the
// merged union.
//
// By default the gateway runs push-based epoch propagation: a watcher
// per peer long-polls the peer's GET /watch, queries answer from the
// cached federated fold instantly (X-Sketch-Staleness reports the age
// bound), and a background refresher re-folds off the request path.
// -max-stale bounds how stale a served fold may get; -push=false
// reverts to per-query conditional-GET fan-outs.
//
//	sketchgw -dim 2 -alpha 0.5 -peers http://a:7070,http://b:7070,http://c:7070
//	sketchgw -dim 2 -alpha 0.5 -peers ... -partial fail -timeout 2s
//	sketchgw -dim 2 -alpha 0.5 -peers ... -max-stale 500ms -watch-timeout 10s
//	sketchgw -dim 2 -alpha 0.5 -peers ... -replicas 2
//
// -replicas R makes every routing cell owned by R peers: ingest fans each
// sub-batch to all owners, queries answer complete (partial: false) while
// fewer than R peers are down, sub-batches missed by a down replica are
// queued for hinted handoff and replayed on recovery, and a rejoining
// replica is read-repaired with the merged slice of the cells it owns
// (see docs/cluster.md "Replication & quorum reads").
//
// Endpoints (full reference in docs/cluster.md):
//
//	POST /ingest   point batches (NDJSON or packed binary) → routed to peers
//	GET  /query    federated sample + estimate; "partial": true on degraded answers
//	GET  /sketch   the federated merged sketch (so gateways stack into trees)
//	GET  /stats    gateway counters + per-peer health
//	GET  /healthz  ok / degraded (k/n peers up) / 503 with no live peers
//	GET  /metrics  Prometheus text exposition (disable with -metrics=false)
//
// Every request is tagged with an X-Sketch-Trace ID (inbound wins, the
// gateway mints otherwise; -trace=false stops minting) that is echoed on
// the response and forwarded to every peer the request touches, so one
// federated query reconstructs across the fleet from its trace ID.
// -slow-query logs requests over a threshold as structured JSON with
// per-stage timings; -pprof serves net/http/pprof on a side address.
//
// -alpha, -dim, and -seed must match the peers' flags: the routing grid
// is derived from them, and peer sketches merge only when built with
// identical options.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", ":7071", "listen address")
		peers    = flag.String("peers", "", "comma-separated sketchd base URLs (required)")
		alpha    = flag.Float64("alpha", 1, "distance threshold α — must match the peers")
		dim      = flag.Int("dim", 0, "point dimension (required) — must match the peers")
		seed     = flag.Uint64("seed", 1, "random seed — must match the peers")
		replicas = flag.Int("replicas", 1, "peers owning each routing cell: ingest fans to all R owners, queries stay complete while <R peers are down")
		handoff  = flag.Int("handoff-max", 256, "with -replicas >1, max hinted-handoff sub-batches queued per down replica before overflow drops")
		partial  = flag.String("partial", "degrade", "partial-failure policy for quorum-partial folds: degrade (answer from live peers, partial=true) or fail (502)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-attempt timeout of each peer request")
		retries  = flag.Int("retries", 2, "extra attempts per failed peer request")
		backoff  = flag.Duration("backoff", 50*time.Millisecond, "base delay between retry attempts (linear)")
		downN    = flag.Int("down-after", 3, "consecutive failures before a peer's circuit breaker opens")
		cooldown = flag.Duration("down-cooldown", 2*time.Second, "how long an open breaker skips a peer")
		fedCache = flag.Bool("fed-cache", true, "cache peer snapshots and the federated fold keyed by the peers' ingest epochs (disable only for debugging)")
		push     = flag.Bool("push", true, "push-based epoch propagation: watch peers for ingest pushes and serve queries from the cached fold, revalidating in the background (peers without /watch are polled)")
		maxStale = flag.Duration("max-stale", 5*time.Second, "with -push, how stale a served fold may be before a query pays a synchronous refresh; negative = unbounded")
		watchTO  = flag.Duration("watch-timeout", 25*time.Second, "with -push, the /watch long-poll timeout requested from peers")
		pollIvl  = flag.Duration("poll-interval", 500*time.Millisecond, "with -push, the conditional-GET polling cadence for peers without /watch")
		metrics  = flag.Bool("metrics", true, "expose Prometheus metrics on GET /metrics")
		trace    = flag.Bool("trace", true, "mint X-Sketch-Trace IDs and propagate them to peers")
		slowQ    = flag.Duration("slow-query", 0, "log requests slower than this as JSON lines on stderr (0 disables)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()

	if *dim < 1 {
		fatal(fmt.Errorf("-dim is required"))
	}
	peerList := strings.Split(*peers, ",")
	var urls []string
	for _, p := range peerList {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, p)
		}
	}
	if len(urls) == 0 {
		fatal(fmt.Errorf("-peers is required (comma-separated base URLs)"))
	}
	policy, err := cluster.ParsePolicy(*partial)
	if err != nil {
		fatal(err)
	}
	router, err := engine.NewRouterFromOptions(core.Options{Alpha: *alpha, Dim: *dim, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if *retries == 0 {
		*retries = cluster.NoRetries // the flag's 0 means none, not "default"
	}
	gw, err := cluster.New(cluster.Config{
		Peers:          urls,
		Router:         router,
		Dim:            *dim,
		Replicas:       *replicas,
		HandoffMax:     *handoff,
		Partial:        policy,
		RequestTimeout: *timeout,
		Retries:        *retries,
		RetryBackoff:   *backoff,
		DownAfter:      *downN,
		DownCooldown:   *cooldown,
		NoCache:        !*fedCache,
		Push:           *push && *fedCache,
		MaxStale:       *maxStale,
		WatchTimeout:   *watchTO,
		PollInterval:   *pollIvl,
		NoMetrics:      !*metrics,
		Trace:          *trace,
		SlowQuery:      *slowQ,
	})
	if err != nil {
		fatal(err)
	}
	defer gw.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: gw}

	if *pprofA != "" {
		go func() {
			log.Printf("sketchgw: pprof on %s", *pprofA)
			if err := http.ListenAndServe(*pprofA, telemetry.PprofHandler()); err != nil {
				log.Printf("sketchgw: pprof: %v", err)
			}
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		cache := "on"
		if !*fedCache {
			cache = "off"
		}
		mode := "pull"
		if *push && *fedCache {
			mode = fmt.Sprintf("push (max-stale %s)", *maxStale)
		}
		ver, commit := telemetry.BuildInfo()
		log.Printf("sketchgw: build %s (%s), %d peers, replicas %d, policy %s, federated cache %s, propagation %s, listening on %s",
			ver, commit, len(urls), *replicas, policy, cache, mode, *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("sketchgw: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("sketchgw: shutdown: %v", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sketchgw:", err)
	os.Exit(1)
}
