// Command f0est estimates the robust number of distinct elements (F0) of a
// stream with near-duplicates: points within -alpha of each other count as
// one element. It also prints what classic duplicate-blind estimators
// report on the same stream, for contrast.
//
//	f0est -alpha 0.5 -dim 3 -eps 0.2 < points.txt
//	f0est -dataset rand5-pl
//	f0est -dataset seeds -window 1024
//
// Input format matches l0sample: one point per line, whitespace- or
// comma-separated coordinates.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/f0"
	"repro/internal/geom"
	"repro/internal/pointio"
	"repro/internal/window"
)

func main() {
	var (
		alpha   = flag.Float64("alpha", 1, "distance threshold α")
		dim     = flag.Int("dim", 0, "point dimension (required for stdin input)")
		in      = flag.String("in", "", "input file (default stdin)")
		ds      = flag.String("dataset", "", "generate a paper workload (rand5, yacht-pl, ...)")
		eps     = flag.Float64("eps", 0.25, "target accuracy (1±ε)")
		copies  = flag.Int("copies", 9, "median-boosting copies")
		seed    = flag.Uint64("seed", 1, "random seed")
		windowW = flag.Int64("window", 0, "sliding window size (0 = infinite window)")
	)
	flag.Parse()

	pts, opts, err := loadPoints(*ds, *in, *alpha, *dim, *seed)
	if err != nil {
		fatal(err)
	}

	if *windowW > 0 {
		opts.Kappa = 1
		opts.StreamBound = 16
		we, err := f0.NewWindowEstimator(opts, window.Window{Kind: window.Sequence, W: *windowW}, *eps, 0)
		if err != nil {
			fatal(err)
		}
		for _, p := range pts {
			we.Process(p)
		}
		est, err := we.Estimate()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("robust F0 of last %d points: %.1f (%d copies, %d words)\n",
			*windowW, est, we.Copies(), we.SpaceWords())
		return
	}

	med, err := f0.NewMedian(opts, *eps, 0, *copies)
	if err != nil {
		fatal(err)
	}
	kmv := baseline.NewKMV(1024, *seed^0x1234)
	hll := baseline.NewHyperLogLog(12, *seed^0x5678)
	for _, p := range pts {
		med.Process(p)
		kmv.Process(p)
		hll.Process(p)
	}
	est, err := med.Estimate()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream length:              %d\n", len(pts))
	fmt.Printf("robust F0 (α=%g):           %.1f\n", opts.Alpha, est)
	fmt.Printf("duplicate-blind KMV:        %.1f\n", kmv.Estimate())
	fmt.Printf("duplicate-blind HyperLogLog %.1f\n", hll.Estimate())
	fmt.Printf("sketch: %d words across %d copies\n", med.SpaceWords(), *copies)
}

func loadPoints(ds, in string, alpha float64, dim int, seed uint64) ([]geom.Point, core.Options, error) {
	if ds != "" {
		spec, err := dataset.SpecByName(ds)
		if err != nil {
			return nil, core.Options{}, err
		}
		inst := dataset.Build(spec, seed)
		return inst.Points, core.Options{
			Alpha:       inst.Alpha,
			Dim:         spec.Base.Dim(),
			StreamBound: len(inst.Points) + 1,
			Seed:        seed,
			HighDim:     true,
		}, nil
	}
	if dim < 1 {
		return nil, core.Options{}, fmt.Errorf("-dim is required when reading points from input")
	}
	var f *os.File
	if in == "" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return nil, core.Options{}, err
		}
		defer f.Close()
	}
	pts, err := pointio.ReadPoints(f, dim)
	if err != nil {
		return nil, core.Options{}, err
	}
	return pts, core.Options{
		Alpha:       alpha,
		Dim:         dim,
		StreamBound: len(pts) + 1,
		Seed:        seed,
		HighDim:     true,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "f0est:", err)
	os.Exit(1)
}
