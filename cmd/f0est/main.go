// Command f0est estimates the robust number of distinct elements (F0) of a
// stream with near-duplicates: points within -alpha of each other count as
// one element. It also prints what classic duplicate-blind estimators
// report on the same stream, for contrast.
//
//	f0est -alpha 0.5 -dim 3 -eps 0.2 < points.txt
//	f0est -dataset rand5-pl
//	f0est -dataset seeds -window 1024
//	f0est -dataset rand5-pl -shards 8
//	f0est -dataset seeds -window 1024 -window-kind time -shards 8
//
// Input format matches l0sample: one point per line, whitespace- or
// comma-separated coordinates. With -shards P > 1 the stream is
// partitioned across P parallel estimator shards and the estimate is
// taken from the merged snapshot; windows can be sharded only with
// -window-kind time (arrival indices serve as timestamps on this input),
// sequence windows only run single-threaded.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/pointio"
	"repro/internal/window"
	"repro/pkg/sketch"
)

func main() {
	var (
		alpha   = flag.Float64("alpha", 1, "distance threshold α")
		dim     = flag.Int("dim", 0, "point dimension (required for stdin input)")
		in      = flag.String("in", "", "input file (default stdin)")
		ds      = flag.String("dataset", "", "generate a paper workload (rand5, yacht-pl, ...)")
		eps     = flag.Float64("eps", 0.25, "target accuracy (1±ε)")
		copies  = flag.Int("copies", 9, "median-boosting copies")
		seed    = flag.Uint64("seed", 1, "random seed")
		windowW = flag.Int64("window", 0, "sliding window size (0 = infinite window)")
		windowK = flag.String("window-kind", "sequence", "window semantics: sequence (last W points) or time (stamps = arrival indices; shardable)")
		shards  = flag.Int("shards", 1, "partition the stream across N parallel estimator shards (infinite window or -window-kind time)")
	)
	flag.Parse()

	pts, opts, err := loadPoints(*ds, *in, *alpha, *dim, *seed)
	if err != nil {
		fatal(err)
	}

	if *windowW > 0 {
		kind, err := window.ParseKind(*windowK)
		if err != nil {
			fatal(err)
		}
		win := window.Window{Kind: kind, W: *windowW}
		opts.Kappa = 1
		opts.StreamBound = 16
		if *shards > 1 {
			if win.Kind != window.Time {
				fatal(fmt.Errorf("%w: drop -shards to run the sequence-window estimator single-threaded, use -window-kind time, or drop -window to shard the infinite-window estimator (see docs/engine.md, \"Limitations\")", engine.ErrWindowedSharding))
			}
			eng, err := engine.NewWindowF0Engine(opts, win, *eps, engine.Config{Shards: *shards})
			if err != nil {
				fatal(err)
			}
			eng.ProcessStampedBatch(pts, pointio.IndexStamps(len(pts)))
			res, err := eng.Query()
			if err != nil {
				fatal(err)
			}
			st := eng.Stats()
			fmt.Printf("robust F0 of last %d points: %.1f (%d shards, %d words, %.0f pts/s)\n",
				*windowW, res.Estimate, st.Shards, st.SpaceWords, st.Throughput)
			eng.Close()
			return
		}
		we, err := sketch.NewWindowF0(opts, win, *eps)
		if err != nil {
			fatal(err)
		}
		if win.Kind == window.Time {
			we.ProcessStampedBatch(pts, pointio.IndexStamps(len(pts)))
		} else {
			we.ProcessBatch(pts)
		}
		res, err := we.Query()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("robust F0 of last %d points: %.1f (%d copies, %d words)\n",
			*windowW, res.Estimate, we.Estimator().Copies(), we.Space())
		return
	}

	// The robust estimator and the duplicate-blind baselines all ride the
	// unified sketch interface; the robust one optionally sharded.
	var robust interface {
		ProcessBatch(ps []geom.Point)
		Query() (sketch.Result, error)
	}
	var eng *engine.Engine
	if *shards > 1 {
		eng, err = engine.NewF0Engine(opts, *eps, *copies, engine.Config{Shards: *shards})
		if err != nil {
			fatal(err)
		}
		robust = eng
	} else {
		med, err := sketch.NewF0(opts, *eps, *copies)
		if err != nil {
			fatal(err)
		}
		robust = med
	}
	kmv := sketch.NewKMV(1024, *seed^0x1234)
	hll := sketch.NewHyperLogLog(12, *seed^0x5678)
	robust.ProcessBatch(pts)
	// Capture engine stats before the baselines run, so the reported
	// throughput reflects the sharded ingestion only.
	var engStats engine.Stats
	if eng != nil {
		eng.Drain()
		engStats = eng.Stats()
	}
	kmv.ProcessBatch(pts)
	hll.ProcessBatch(pts)
	res, err := robust.Query()
	if err != nil {
		fatal(err)
	}
	kmvRes, _ := kmv.Query()
	hllRes, _ := hll.Query()
	fmt.Printf("stream length:              %d\n", len(pts))
	fmt.Printf("robust F0 (α=%g):           %.1f\n", opts.Alpha, res.Estimate)
	fmt.Printf("duplicate-blind KMV:        %.1f\n", kmvRes.Estimate)
	fmt.Printf("duplicate-blind HyperLogLog %.1f\n", hllRes.Estimate)
	if eng != nil {
		fmt.Printf("sketch: %d copies × %d shards, %d words total (%.0f pts/s)\n",
			*copies, engStats.Shards, engStats.SpaceWords, engStats.Throughput)
		eng.Close()
	} else {
		fmt.Printf("sketch: %d words across %d copies\n", robust.(*sketch.F0).Space(), *copies)
	}
}

func loadPoints(ds, in string, alpha float64, dim int, seed uint64) ([]geom.Point, core.Options, error) {
	if ds != "" {
		spec, err := dataset.SpecByName(ds)
		if err != nil {
			return nil, core.Options{}, err
		}
		inst := dataset.Build(spec, seed)
		return inst.Points, core.Options{
			Alpha:       inst.Alpha,
			Dim:         spec.Base.Dim(),
			StreamBound: len(inst.Points) + 1,
			Seed:        seed,
			HighDim:     true,
		}, nil
	}
	if dim < 1 {
		return nil, core.Options{}, fmt.Errorf("-dim is required when reading points from input")
	}
	var f *os.File
	if in == "" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return nil, core.Options{}, err
		}
		defer f.Close()
	}
	pts, err := pointio.ReadPoints(f, dim)
	if err != nil {
		return nil, core.Options{}, err
	}
	return pts, core.Options{
		Alpha:       alpha,
		Dim:         dim,
		StreamBound: len(pts) + 1,
		Seed:        seed,
		HighDim:     true,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "f0est:", err)
	os.Exit(1)
}
