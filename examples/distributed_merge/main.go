// Distributed merge: sketching shards independently and merging.
//
// Four ingestion sites each see a shard of a noisy event stream (the
// distributed-streams setting the paper's Related Work attributes to
// Chung–Tirthapura [12]). Each site runs the robust ℓ0-sampler locally
// behind the unified sketch interface; the coordinator merges the four
// sketches — a few kilobytes each, shipped with Serialize — and samples
// distinct events from the union without ever seeing the raw streams.
//
// The example also demonstrates checkpoint/restore (site 3 "crashes"
// mid-shard and resumes from its serialized sketch) and finishes with the
// in-process equivalent: the sharded streaming engine, which runs the
// same shard-sketch-merge pipeline across worker goroutines behind one
// ProcessBatch/Query facade.
//
// Run with: go run ./examples/distributed_merge
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/pkg/sketch"
)

const (
	numEvents = 250 // distinct events
	dim       = 8
	alpha     = 0.5
)

func main() {
	rng := rand.New(rand.NewPCG(77, 7))

	// Distinct events, far apart; each occurrence is a near-duplicate.
	events := make([]geom.Point, numEvents)
	for i := range events {
		p := make(geom.Point, dim)
		for j := range p {
			p[j] = rng.Float64() * 50
		}
		events[i] = p
	}
	occurrence := func(id int) geom.Point {
		p := events[id].Clone()
		for j := range p {
			p[j] += (rng.Float64() - 0.5) * alpha / 4
		}
		return p
	}

	// A shared configuration: merging requires identical options (the
	// sketches must agree on the grid and hash function).
	opts := core.Options{Alpha: alpha, Dim: dim, Seed: 2024, HighDim: true}

	// Four sites, each seeing 5000 occurrences of a site-biased subset.
	sites := make([]*sketch.L0, 4)
	for i := range sites {
		s, err := sketch.NewL0(opts)
		if err != nil {
			log.Fatal(err)
		}
		sites[i] = s
	}
	var allOccurrences []geom.Point
	for site := 0; site < 4; site++ {
		for k := 0; k < 5000; k++ {
			// Site i mostly sees events congruent to i mod 4, plus spillover.
			id := rng.IntN(numEvents)
			if rng.Float64() < 0.8 {
				id = (id/4)*4 + site
				if id >= numEvents {
					id -= 4
				}
			}
			p := occurrence(id)
			allOccurrences = append(allOccurrences, p)
			sites[site].Process(p)

			// Site 3 crashes at its midpoint and resumes from checkpoint.
			if site == 3 && k == 2500 {
				blob, err := sites[3].Serialize()
				if err != nil {
					log.Fatal(err)
				}
				restored, err := sketch.RestoreL0(blob)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("site 3 checkpointed at %d events: %d-byte sketch, restored OK\n",
					k, len(blob))
				sites[3] = restored
			}
		}
	}

	// Coordinator: merge the other sites into site 0 via the Mergeable
	// interface (each merge leaves its argument intact).
	merged := sites[0]
	for i := 1; i < 4; i++ {
		if err := merged.Merge(sites[i]); err != nil {
			log.Fatal(err)
		}
	}
	ms := merged.Sampler()
	fmt.Printf("merged sketch over %d total occurrences: |Sacc|=%d |Srej|=%d R=%d, %d words\n",
		ms.Processed(), ms.AcceptSize(), ms.RejectSize(), ms.R(), merged.Space())

	// Sample distinct events from the union.
	fmt.Println("\n10 distinct-event samples from the union of all sites:")
	seen := map[int]bool{}
	var estimate float64
	for i := 0; i < 10; i++ {
		res, err := merged.Query()
		if err != nil {
			log.Fatal(err)
		}
		id := nearestEvent(res.Sample, events)
		seen[id] = true
		estimate = res.Estimate
		fmt.Printf("  event %3d\n", id)
	}
	fmt.Printf("(%d distinct events in 10 draws)\n", len(seen))
	fmt.Printf("\ncoarse distinct-event estimate |Sacc|·R = %.0f (truth %d)\n", estimate, numEvents)

	// The in-process version: the sharded engine routes the same stream
	// across 4 worker shards and answers from a merged snapshot.
	eng, err := engine.NewSamplerEngine(opts, engine.Config{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	eng.ProcessBatch(allOccurrences)
	res, err := eng.Query()
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("\nsharded engine over the same stream: estimate %.0f, %d shards, %.0f pts/s\n",
		res.Estimate, st.Shards, st.Throughput)
	eng.Close()
}

func nearestEvent(p geom.Point, events []geom.Point) int {
	best, bestD := -1, 1e18
	for i, e := range events {
		if d := geom.SqDist(p, e); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
