// Sliding window: monitoring the most recent traffic only.
//
// A sensor network emits readings; each sensor's readings drift slightly
// (near-duplicates of its signature), and sensors come and go. An operator
// wants, at any moment, a uniformly random *currently active* sensor — one
// with a reading in the last w time steps — regardless of how chatty each
// sensor is. That is exactly robust ℓ0-sampling over a time-based sliding
// window (paper Section 2.2).
//
// The example runs the hierarchical window sampler (Algorithms 3–5) over
// three eras of sensor activity and shows that samples always come from
// currently-active sensors, with chatty sensors not oversampled. It also
// tracks the window's active-sensor count with the sliding-window F0
// estimator (Section 5).
//
// Run with: go run ./examples/sliding_window
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/window"
	"repro/pkg/sketch"
)

func main() {
	const (
		alpha      = 1.0
		windowSize = 500 // time units
	)
	rng := rand.New(rand.NewPCG(11, 13))

	// 30 sensors on a grid, signatures ≫ α apart.
	signatures := make([]geom.Point, 30)
	for i := range signatures {
		signatures[i] = geom.Point{float64(i%6) * 10, float64(i/6) * 10}
	}
	reading := func(sensor int) geom.Point {
		s := signatures[sensor]
		return geom.Point{s[0] + (rng.Float64()-0.5)*0.8, s[1] + (rng.Float64()-0.5)*0.8}
	}

	// Both window sketches ride the unified pkg/sketch interface;
	// time-based windows feed them through the concrete ProcessAt.
	ws, err := sketch.NewWindowL0(core.Options{
		Alpha: alpha, Dim: 2, Seed: 42,
	}, window.Window{Kind: window.Time, W: windowSize})
	if err != nil {
		log.Fatal(err)
	}
	est, err := sketch.NewWindowF0(core.Options{
		Alpha: alpha, Dim: 2, Seed: 43, Kappa: 1, StreamBound: 16,
	}, window.Window{Kind: window.Time, W: windowSize}, 0.35)
	if err != nil {
		log.Fatal(err)
	}

	// Three eras: sensors 0–9 active, then 10–19, then 20–29. Sensor
	// activity is skewed: within an era, sensor (base+0) is 20× chattier
	// than (base+9).
	eras := []struct {
		until int64
		base  int
	}{{2000, 0}, {4000, 10}, {6000, 20}}

	now := int64(0)
	for _, era := range eras {
		for now < era.until {
			now += int64(1 + rng.IntN(3)) // irregular arrival times
			// Skewed sensor choice within the era.
			k := era.base + skewedIndex(rng)
			r := reading(k)
			ws.ProcessAt(r, now)
			est.ProcessAt(r, now)
		}
		// End of era: sample the active sensors a few times.
		fmt.Printf("t=%5d (era of sensors %d–%d):\n", now, era.base, era.base+9)
		seen := map[int]bool{}
		for q := 0; q < 8; q++ {
			res, err := ws.Query()
			if err != nil {
				log.Fatal(err)
			}
			id := sensorOf(res.Sample, signatures)
			seen[id] = true
			fmt.Printf("  window sample → sensor %2d\n", id)
			if id < era.base || id >= era.base+10 {
				log.Fatalf("sampled sensor %d from an expired era!", id)
			}
		}
		f0res, err := est.Query()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  distinct active sensors in window: ≈%.0f (truth ≤ 10); %d distinct in 8 draws\n\n",
			f0res.Estimate, len(seen))
	}
	fmt.Printf("sampler footprint: %d words peak across %d levels for a %d-unit window\n",
		ws.WindowSampler().PeakSpaceWords(), ws.WindowSampler().Levels(), windowSize)
}

// skewedIndex returns 0..9 with P[i] ∝ 1/(i+1): index 0 is ~20× likelier
// than index 9.
func skewedIndex(rng *rand.Rand) int {
	weights := [10]float64{}
	total := 0.0
	for i := range weights {
		total += 1 / float64(i+1)
		weights[i] = total
	}
	u := rng.Float64() * total
	for i, w := range weights {
		if u <= w {
			return i
		}
	}
	return 9
}

func sensorOf(p geom.Point, signatures []geom.Point) int {
	for i, s := range signatures {
		if geom.Dist(p, s) < 2 {
			return i
		}
	}
	return -1
}
