// Quickstart: the smallest end-to-end tour of the robust ℓ0-sampling API.
//
// We stream points in R² where three "entities" each appear many times
// with small perturbations (near-duplicates), then draw distinct samples
// that treat each entity as one element — every entity is returned with
// probability ≈ 1/3 no matter how many near-duplicates it has.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/pkg/sketch"
)

func main() {
	rng := rand.New(rand.NewPCG(7, 7))

	// Three entities at distance ≫ α from each other, with wildly
	// different duplicate counts: 1000, 50 and 1 appearance(s).
	entities := []geom.Point{{0, 0}, {10, 0}, {0, 10}}
	appearances := []int{1000, 50, 1}

	var stream []geom.Point
	for i, e := range entities {
		for k := 0; k < appearances[i]; k++ {
			stream = append(stream, geom.Point{
				e[0] + (rng.Float64()-0.5)*0.5, // ±0.25 noise: a near-duplicate
				e[1] + (rng.Float64()-0.5)*0.5,
			})
		}
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	// A sketch with α = 1: any two points within distance 1 are treated
	// as the same element. sketch.NewL0 is the unified-interface
	// constructor; Query returns a uniform group sample plus a coarse
	// distinct-group estimate.
	counts := make([]int, len(entities))
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		s, err := sketch.NewL0(core.Options{
			Alpha: 1,
			Dim:   2,
			Seed:  uint64(trial) + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		s.ProcessBatch(stream)
		res, err := s.Query()
		if err != nil {
			log.Fatal(err)
		}
		for i, e := range entities {
			if geom.Dist(res.Sample, e) < 1 {
				counts[i]++
			}
		}
	}

	fmt.Println("robust distinct sampling over", len(stream), "points, 3 entities:")
	for i, c := range counts {
		fmt.Printf("  entity %d (%4d appearances): sampled %4d/%d times (%.1f%%, uniform target 33.3%%)\n",
			i, appearances[i], c, trials, 100*float64(c)/trials)
	}
	fmt.Println("\na plain random point sample would return entity 0 ≈95% of the time;")
	fmt.Println("robust ℓ0-sampling returns each entity equally often.")
}
