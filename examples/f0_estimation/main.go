// F0 estimation: counting distinct entities in a noisy message stream.
//
// A messaging platform wants the number of distinct messages being
// forwarded, where each forward applies small edits — the paper's
// "numerous tweets and WhatsApp/WeChat messages are re-sent with small
// edits". Messages are embedded as points; edits move a point by less than
// α. Classic cardinality sketches (KMV, HyperLogLog, linear counting)
// count every edit as a new message; the robust F0 estimator counts
// message identities.
//
// The example sweeps the duplication factor and prints the estimates side
// by side: the robust estimate stays flat near the true identity count
// while the classic sketches grow linearly with the duplication.
//
// Run with: go run ./examples/f0_estimation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/pkg/sketch"
)

const (
	numMessages = 300
	dim         = 12
	alpha       = 0.05
)

func main() {
	rng := rand.New(rand.NewPCG(3, 33))

	// Distinct message embeddings.
	msgs := make([]geom.Point, numMessages)
	for i := range msgs {
		p := make(geom.Point, dim)
		for j := range p {
			p[j] = rng.Float64() * 30
		}
		msgs[i] = p
	}

	fmt.Printf("%8s  %10s  %10s  %10s  %10s  %10s\n",
		"forwards", "stream", "robust F0", "KMV", "HLL", "linear")
	for _, forwards := range []int{1, 5, 20, 80} {
		var stream []geom.Point
		for _, m := range msgs {
			stream = append(stream, m)
			for f := 1; f < forwards; f++ {
				e := m.Clone()
				for j := range e {
					e[j] += (rng.Float64() - 0.5) * alpha / math.Sqrt(dim)
				}
				stream = append(stream, e)
			}
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

		// Every estimator — robust and duplicate-blind alike — is driven
		// through the same unified sketch.Sketch interface.
		robust, err := sketch.NewF0(core.Options{
			Alpha: alpha, Dim: dim, Seed: uint64(forwards), HighDim: true,
			StreamBound: len(stream) + 1,
		}, 0.2, 9)
		if err != nil {
			log.Fatal(err)
		}
		sketches := []sketch.Sketch{
			robust,
			sketch.NewKMV(512, uint64(forwards)+100),
			sketch.NewHyperLogLog(11, uint64(forwards)+200),
			sketch.NewLinearCounting(1<<17, uint64(forwards)+300),
		}
		ests := make([]float64, len(sketches))
		for i, sk := range sketches {
			sk.ProcessBatch(stream)
			res, err := sk.Query()
			if err != nil {
				log.Fatal(err)
			}
			ests[i] = res.Estimate
		}
		fmt.Printf("%8d  %10d  %10.0f  %10.0f  %10.0f  %10.0f\n",
			forwards, len(stream), ests[0], ests[1], ests[2], ests[3])
	}
	fmt.Printf("\ntrue number of distinct messages: %d at every duplication level\n", numMessages)
}
