// Dedup crawl: sampling distinct documents from a crawl full of
// near-duplicate pages.
//
// This is the workload the paper's introduction motivates: "a large number
// of webpages on the Internet are near-duplicates of each other". We model
// each document as a point in a 16-dimensional feature space (in practice:
// a SimHash/minhash-style embedding); mirrored or re-rendered copies land
// within distance α of the original. Popularity follows a power law, so a
// handful of documents dominates the crawl stream.
//
// The example contrasts three ways to "sample a document":
//
//  1. uniform random position in the stream (reservoir) — biased by copies,
//  2. standard min-rank distinct sampling — still biased (every copy is a
//     distinct exact item),
//  3. robust ℓ0-sampling — uniform over distinct documents.
//
// It also estimates the number of distinct documents with the robust F0
// estimator and draws a k-sample without replacement for a "random survey"
// of the corpus.
//
// Run with: go run ./examples/dedup_crawl
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/pkg/sketch"
)

const (
	numDocs = 400 // distinct documents
	dim     = 16  // feature-space dimension
	alpha   = 0.1 // near-duplicate radius in feature space
)

func main() {
	rng := rand.New(rand.NewPCG(2024, 6))

	// Distinct documents: well-separated random feature vectors.
	docs := make([]geom.Point, numDocs)
	for i := range docs {
		p := make(geom.Point, dim)
		for j := range p {
			p[j] = rng.Float64() * 20
		}
		docs[i] = p
	}

	// Power-law crawl stream: document i is crawled ⌈numDocs/(i+1)⌉ times,
	// each crawl a near-duplicate copy (re-rendering noise < α/2).
	var stream []geom.Point
	var docOf []int
	for i, d := range docs {
		copies := int(math.Ceil(float64(numDocs) / float64(i+1)))
		for c := 0; c < copies; c++ {
			p := d.Clone()
			for j := range p {
				p[j] += (rng.Float64() - 0.5) * alpha / math.Sqrt(dim)
			}
			stream = append(stream, p)
			docOf = append(docOf, i)
		}
	}
	rng.Shuffle(len(stream), func(i, j int) {
		stream[i], stream[j] = stream[j], stream[i]
		docOf[i], docOf[j] = docOf[j], docOf[i]
	})
	fmt.Printf("crawl stream: %d page fetches of %d distinct documents (doc 0 fetched %d times)\n\n",
		len(stream), numDocs, numDocs)

	// How often does each strategy return the most-crawled document?
	const trials = 1500
	hitsReservoir, hitsMinRank, hitsRobust := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial)*2654435761 + 17
		// Reservoir and robust sampler ride the unified sketch interface;
		// min-rank keeps its bespoke API (it has no batch path to share).
		res := sketch.NewReservoir(1, seed)
		mr := baseline.NewMinRank(seed + 1)
		rb, err := sketch.NewL0(core.Options{
			Alpha: alpha, Dim: dim, Seed: seed + 2, HighDim: true,
			StreamBound: len(stream) + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res.ProcessBatch(stream)
		rb.ProcessBatch(stream)
		for _, p := range stream {
			mr.Process(p)
		}
		if r, err := res.Query(); err == nil && nearest(r.Sample, docs) == 0 {
			hitsReservoir++
		}
		if q, err := mr.Query(); err == nil && nearest(q, docs) == 0 {
			hitsMinRank++
		}
		if r, err := rb.Query(); err == nil && nearest(r.Sample, docs) == 0 {
			hitsRobust++
		}
	}
	uniform := 100.0 / numDocs
	fmt.Println("probability of sampling the most-duplicated document (uniform target:",
		fmt.Sprintf("%.2f%%):", uniform))
	fmt.Printf("  position reservoir:     %5.2f%%  (∝ fetch count)\n", 100*float64(hitsReservoir)/trials)
	fmt.Printf("  standard min-rank ℓ0:   %5.2f%%  (∝ distinct copies)\n", 100*float64(hitsMinRank)/trials)
	fmt.Printf("  robust ℓ0 (this paper): %5.2f%%\n\n", 100*float64(hitsRobust)/trials)

	// Distinct-document count despite the duplicates.
	med, err := sketch.NewF0(core.Options{
		Alpha: alpha, Dim: dim, Seed: 99, HighDim: true, StreamBound: len(stream) + 1,
	}, 0.2, 9)
	if err != nil {
		log.Fatal(err)
	}
	med.ProcessBatch(stream)
	f0res, err := med.Query()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("robust F0 estimate: %.0f distinct documents (truth %d, stream %d)\n\n",
		f0res.Estimate, numDocs, len(stream))

	// A survey sample of 5 distinct documents, no repeats.
	survey, err := sketch.NewL0(core.Options{
		Alpha: alpha, Dim: dim, Seed: 123, HighDim: true, K: 5,
		StreamBound: len(stream) + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	survey.ProcessBatch(stream)
	picks, err := survey.QueryK(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("survey sample of 5 distinct documents (without replacement):")
	for _, q := range picks {
		fmt.Printf("  doc %d\n", nearest(q, docs))
	}
}

// nearest maps a sampled point back to its document id.
func nearest(p geom.Point, docs []geom.Point) int {
	best, bestD := -1, math.Inf(1)
	for i, d := range docs {
		if dist := geom.Dist(p, d); dist < bestD {
			best, bestD = i, dist
		}
	}
	return best
}
