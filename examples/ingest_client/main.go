// Ingest client: the full sketchd round trip against a live HTTP server.
//
// The example boots the cmd/sketchd server stack in-process on a loopback
// port (the same internal/server handler the daemon serves), then acts as
// a fleet of clients: eight goroutines stream a noisy point cloud as
// NDJSON ingest batches, queries are answered from the engine's cached
// merged snapshot, the engine state is checkpointed over HTTP, and a
// "restarted" server restored from that checkpoint answers the same query
// with the identical estimate.
//
// Run with: go run ./examples/ingest_client
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
)

const (
	numGroups = 500 // distinct near-duplicate groups
	dup       = 40  // occurrences per group
	clients   = 8
	batchSize = 1000
)

func main() {
	// A noisy stream: 500 well-separated groups, 40 near-duplicates each.
	rng := rand.New(rand.NewPCG(7, 77))
	pts := make([]geom.Point, 0, numGroups*dup)
	for g := 0; g < numGroups; g++ {
		cx, cy := float64(g%25)*10, float64(g/25)*10
		for d := 0; d < dup; d++ {
			pts = append(pts, geom.Point{cx + (rng.Float64()-0.5)*0.5, cy + (rng.Float64()-0.5)*0.5})
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })

	opts := core.Options{
		Alpha: 1, Dim: 2, Seed: 99,
		StreamBound: len(pts) + 1,
		Kappa:       64, // threshold above the group count: exact estimates
	}
	ckpt := filepath.Join(os.TempDir(), "ingest_client.ckpt")
	defer os.Remove(ckpt)

	// Boot the server stack on a loopback port.
	baseURL, shutdown := boot(opts, ckpt, false)
	fmt.Printf("sketchd serving on %s\n", baseURL)

	// Eight clients stream their slices as NDJSON batches.
	var wg sync.WaitGroup
	chunk := (len(pts) + clients - 1) / clients
	for c := 0; c < clients; c++ {
		lo, hi := c*chunk, min((c+1)*chunk, len(pts))
		wg.Add(1)
		go func(ps []geom.Point) {
			defer wg.Done()
			for i := 0; i < len(ps); i += batchSize {
				batch := ps[i:min(i+batchSize, len(ps))]
				var body bytes.Buffer
				for _, p := range batch {
					line, _ := json.Marshal([]float64(p))
					body.Write(line)
					body.WriteByte('\n')
				}
				resp, err := http.Post(baseURL+"/ingest", "application/x-ndjson", &body)
				if err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
			}
		}(pts[lo:hi])
	}
	wg.Wait()

	var st server.StatsResponse
	getJSON(baseURL+"/stats", &st)
	fmt.Printf("ingested %d points over %d HTTP batches across %d shards (%.0f pts/s)\n",
		st.Engine.Processed, st.IngestRequests, st.Engine.Shards, st.Engine.Throughput)

	var q server.QueryResponse
	getJSON(baseURL+"/query?k=3", &q)
	fmt.Printf("robust distinct estimate %.0f (truth %d), sample %v\n", q.Estimate, numGroups, q.Sample)

	// Repeat queries ride the snapshot cache — no re-merge.
	for i := 0; i < 20; i++ {
		getJSON(baseURL+"/query", &q)
	}
	getJSON(baseURL+"/stats", &st)
	fmt.Printf("21 queries → %d snapshot merges (%d cache hits)\n",
		st.Engine.SnapshotMisses, st.Engine.SnapshotHits)

	// Persist the engine and restart from the checkpoint.
	resp, err := http.Post(baseURL+"/checkpoint", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	var ck server.CheckpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("checkpointed %d points (%d bytes) to %s\n", ck.Points, ck.Bytes, ck.Path)

	shutdown()
	baseURL2, shutdown2 := boot(opts, ckpt, true)
	defer shutdown2()
	var q2 server.QueryResponse
	getJSON(baseURL2+"/query", &q2)
	fmt.Printf("restarted with -restore: estimate %.0f (identical: %v)\n",
		q2.Estimate, q2.Estimate == q.Estimate)
}

// boot builds an engine (optionally restored from ckpt), wraps it in the
// HTTP server, and serves it on a loopback listener. The returned shutdown
// closes the listener and the engine.
func boot(opts core.Options, ckpt string, restore bool) (string, func()) {
	eng, err := engine.NewSamplerEngine(opts, engine.Config{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	if restore {
		if err := eng.RestoreFile(ckpt); err != nil {
			log.Fatal(err)
		}
	}
	srv, err := server.New(server.Config{Engine: eng, Dim: opts.Dim, CheckpointPath: ckpt})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	return "http://" + ln.Addr().String(), func() {
		httpSrv.Close()
		eng.Close()
	}
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
