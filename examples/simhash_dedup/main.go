// SimHash dedup: robust distinct sampling under COSINE similarity.
//
// Webpages are embedded as term-frequency direction vectors; mirrored or
// re-rendered copies point in almost the same direction (small angle)
// while having very different magnitudes. Using the lsh.Angular space, the
// robust ℓ0-sampler treats all copies within an angular threshold as one
// page — the metric-space generalization the paper's concluding remarks
// propose ("the random grid ... is a particular locality-sensitive hash
// function, and it is possible to generalize our algorithms to general
// metric spaces").
//
// Run with: go run ./examples/simhash_dedup
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lsh"
	"repro/pkg/sketch"
)

const (
	numPages = 120
	dim      = 32
	maxAngle = 0.07 // radians: copies within ~4° are "the same page"
)

func main() {
	rng := rand.New(rand.NewPCG(8, 88))

	// Distinct page directions, mutually far apart in angle.
	pages := make([]geom.Point, 0, numPages)
	for len(pages) < numPages {
		c := randomUnit(rng)
		ok := true
		for _, prev := range pages {
			if angle(c, prev) < 8*maxAngle {
				ok = false
				break
			}
		}
		if ok {
			pages = append(pages, c)
		}
	}

	// The crawl: page i appears 1 + 3i times (heavy skew), each copy
	// slightly rotated (edits) and arbitrarily scaled (document length).
	var stream []geom.Point
	for i, pg := range pages {
		for k := 0; k < 1+3*i; k++ {
			copyVec := rotate(rng, pg, rng.Float64()*maxAngle/2)
			stream = append(stream, copyVec.Scale(0.1+rng.Float64()*100))
		}
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	fmt.Printf("crawl: %d fetches of %d distinct pages (most-copied page: %d copies)\n\n",
		len(stream), numPages, 1+3*(numPages-1))

	// Sample distinct pages under angular identity.
	const trials = 800
	first, last := 0, 0 // hits on the least- and most-duplicated page
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial)*1099511628211 + 3
		space, err := lsh.NewAngular(dim, 12, maxAngle, seed)
		if err != nil {
			log.Fatal(err)
		}
		// A custom Space plugs into the same unified sketch interface
		// (such sketches just are not serializable).
		s, err := sketch.NewL0(core.Options{
			Alpha: maxAngle, Dim: dim, Seed: seed + 1, Space: space,
		})
		if err != nil {
			log.Fatal(err)
		}
		s.ProcessBatch(stream)
		res, err := s.Query()
		if err != nil {
			log.Fatal(err)
		}
		switch nearestPage(res.Sample, pages) {
		case 0:
			first++
		case numPages - 1:
			last++
		}
	}
	uniform := 100.0 / numPages
	fmt.Printf("sampling probability (uniform target %.2f%%):\n", uniform)
	fmt.Printf("  page   0 (  1 copy):    %5.2f%%\n", 100*float64(first)/trials)
	fmt.Printf("  page %d (%d copies):  %5.2f%%\n", numPages-1, 1+3*(numPages-1), 100*float64(last)/trials)
	fmt.Println("\nduplication count does not move the sampling probability —")
	fmt.Println("distinct sampling by meaning (direction), not by bytes.")
}

func randomUnit(rng *rand.Rand) geom.Point {
	p := make(geom.Point, dim)
	for {
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		if n := p.Norm(); n > 1e-9 {
			return p.Scale(1 / n)
		}
	}
}

func rotate(rng *rand.Rand, u geom.Point, theta float64) geom.Point {
	v := randomUnit(rng)
	var dot float64
	for i := range u {
		dot += u[i] * v[i]
	}
	w := v.Sub(u.Scale(dot))
	if n := w.Norm(); n > 1e-9 {
		w = w.Scale(1 / n)
	} else {
		return rotate(rng, u, theta)
	}
	return u.Scale(math.Cos(theta)).Add(w.Scale(math.Sin(theta)))
}

func angle(a, b geom.Point) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return math.Acos(dot)
}

func nearestPage(q geom.Point, pages []geom.Point) int {
	qn := q.Clone()
	if n := qn.Norm(); n > 1e-12 {
		qn = qn.Scale(1 / n)
	}
	best, bestA := -1, math.Inf(1)
	for i, pg := range pages {
		if a := angle(qn, pg); a < bestA {
			best, bestA = i, a
		}
	}
	return best
}
